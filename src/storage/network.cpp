#include "storage/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace acme::storage {

StorageNetworkConfig seren_storage_config() {
  StorageNetworkConfig c;
  c.backend_bytes_per_sec = 80e9;                         // all-NVMe aggregate
  c.node_nic_bytes_per_sec = common::gbps_to_Bps(25.0);   // Fig 16-left cap
  return c;
}

StorageNetworkConfig kalos_storage_config() {
  StorageNetworkConfig c;
  c.backend_bytes_per_sec = 120e9;
  c.node_nic_bytes_per_sec = common::gbps_to_Bps(200.0);  // dedicated HCA
  return c;
}

StorageNetwork::StorageNetwork(sim::Engine& engine, StorageNetworkConfig config)
    : engine_(engine), config_(config) {
  ACME_CHECK(config_.backend_bytes_per_sec > 0);
  ACME_CHECK(config_.node_nic_bytes_per_sec > 0);
  last_update_ = engine_.now();
}

FlowId StorageNetwork::start_flow(cluster::NodeId node, double bytes,
                                  std::function<void()> on_done) {
  ACME_CHECK(bytes > 0);
  advance_to_now();
  const FlowId id = next_id_++;
  flows_.emplace(id, Flow{node, bytes, 0.0, std::move(on_done)});
  reschedule();
  return id;
}

void StorageNetwork::cancel(FlowId id) {
  advance_to_now();
  flows_.erase(id);
  reschedule();
}

double StorageNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void StorageNetwork::advance_to_now() {
  const sim::Time now = engine_.now();
  const double dt = now - last_update_;
  if (dt > 0) {
    for (auto& [id, flow] : flows_)
      flow.remaining_bytes = std::max(0.0, flow.remaining_bytes - flow.rate * dt);
  }
  last_update_ = now;
}

void StorageNetwork::compute_rates() {
  // Progressive filling: repeatedly raise all unfrozen flows' rates equally
  // until a constraint saturates, freeze the flows behind it, repeat.
  for (auto& [id, flow] : flows_) flow.rate = 0;
  if (flows_.empty()) return;

  std::map<cluster::NodeId, std::vector<Flow*>> by_node;
  std::vector<Flow*> all;
  for (auto& [id, flow] : flows_) {
    by_node[flow.node].push_back(&flow);
    all.push_back(&flow);
  }

  std::map<Flow*, bool> frozen;
  for (Flow* f : all) frozen[f] = false;
  double backend_left = config_.backend_bytes_per_sec;
  std::map<cluster::NodeId, double> node_left;
  for (auto& [node, flows] : by_node) node_left[node] = config_.node_nic_bytes_per_sec;

  std::size_t unfrozen = all.size();
  while (unfrozen > 0) {
    // Headroom per unfrozen flow at each constraint.
    double step = std::numeric_limits<double>::infinity();
    const auto backend_unfrozen = static_cast<double>(unfrozen);
    step = std::min(step, backend_left / backend_unfrozen);
    for (auto& [node, flows] : by_node) {
      std::size_t n = 0;
      for (Flow* f : flows)
        if (!frozen[f]) ++n;
      if (n > 0) step = std::min(step, node_left[node] / static_cast<double>(n));
    }
    if (!(step > 0) || !std::isfinite(step)) break;

    for (Flow* f : all)
      if (!frozen[f]) f->rate += step;
    backend_left -= step * backend_unfrozen;
    for (auto& [node, flows] : by_node) {
      std::size_t n = 0;
      for (Flow* f : flows)
        if (!frozen[f]) ++n;
      node_left[node] -= step * static_cast<double>(n);
    }

    // Freeze flows behind any saturated constraint.
    bool backend_saturated = backend_left <= 1e-6 * config_.backend_bytes_per_sec;
    bool froze_any = false;
    for (auto& [node, flows] : by_node) {
      const bool node_saturated =
          node_left[node] <= 1e-6 * config_.node_nic_bytes_per_sec;
      if (!node_saturated && !backend_saturated) continue;
      for (Flow* f : flows) {
        if (!frozen[f]) {
          frozen[f] = true;
          --unfrozen;
          froze_any = true;
        }
      }
    }
    if (!froze_any) break;  // numerical guard
  }
}

void StorageNetwork::reschedule() {
  if (pending_completion_.valid()) {
    engine_.cancel(pending_completion_);
    pending_completion_ = sim::EventHandle{};
  }
  compute_rates();
  if (flows_.empty()) return;

  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0) continue;
    earliest = std::min(earliest, flow.remaining_bytes / flow.rate);
  }
  ACME_CHECK_MSG(std::isfinite(earliest), "storage flow stalled with zero rate");
  pending_completion_ =
      engine_.schedule_after(std::max(earliest, 0.0), [this] { on_completion_event(); });
}

void StorageNetwork::on_completion_event() {
  pending_completion_ = sim::EventHandle{};
  advance_to_now();
  // Collect finished flows first: callbacks may start new flows re-entrantly.
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= 1e-3) {  // within a millibyte of done
      done.push_back(std::move(it->second.on_done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& fn : done)
    if (fn) fn();
}

}  // namespace acme::storage
