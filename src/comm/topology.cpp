#include "comm/topology.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"

namespace acme::comm {

namespace {

// Fraction of the 600 GB/s bidirectional NVLink figure that ring collectives
// sustain as bus bandwidth on A100 NVSwitch nodes (~240 GB/s, the number
// nccl-tests report on 8xA100).
constexpr double kNvlinkBusEfficiency = 0.4;
// NCCL launch + NVSwitch hop latency vs cross-node IB (verbs + switch hops).
constexpr double kNvlinkAlphaSeconds = 5e-6;
constexpr double kIbAlphaSeconds = 20e-6;
// Share of Seren's single HDR HCA left for collectives once the 25 Gb/s
// storage lane (Fig 16-left) is carved out: (200 - 25) / 200.
constexpr double kSharedNicComputeShare = 0.875;

LinkSpec nvlink_link() {
  LinkSpec l;
  l.alpha_seconds = kNvlinkAlphaSeconds;
  l.bytes_per_sec =
      common::gbps_to_Bps(cluster::GpuSpec{}.nvlink_gbps) * kNvlinkBusEfficiency;
  return l;
}

}  // namespace

FabricConfig fabric_from_cluster(const cluster::ClusterSpec& spec) {
  FabricConfig f;
  f.name = spec.name;
  f.gpus_per_node = spec.node.gpus;
  f.nvlink = nvlink_link();
  f.nic.alpha_seconds = kIbAlphaSeconds;
  f.nic.bytes_per_sec = common::gbps_to_Bps(spec.node.nic_gbps);
  f.compute_nics = spec.node.compute_nics;
  // No dedicated storage HCA means checkpoint/loading traffic rides the
  // compute HCA (the Seren pattern; Kalos has a separate storage NIC).
  f.nic_shared_with_storage = spec.node.storage_nics == 0;
  return f;
}

FabricConfig seren_fabric() { return fabric_from_cluster(cluster::seren_spec()); }

FabricConfig kalos_fabric() { return fabric_from_cluster(cluster::kalos_spec()); }

FabricTopology::FabricTopology(FabricConfig config) : config_(std::move(config)) {
  ACME_CHECK(config_.gpus_per_node > 0);
  ACME_CHECK(config_.nvlink.bytes_per_sec > 0 && config_.nic.bytes_per_sec > 0);
  ACME_CHECK(config_.nvlink.alpha_seconds >= 0 && config_.nic.alpha_seconds >= 0);
  ACME_CHECK(config_.compute_nics > 0);
  ACME_CHECK(config_.nic_efficiency > 0 && config_.nic_efficiency <= 1.0);
}

int FabricTopology::nodes_for(int gpus, int ranks_per_node) const {
  ACME_CHECK(gpus > 0);
  const int per_node = ranks_per_node > 0 ? ranks_per_node : config_.gpus_per_node;
  return (gpus + per_node - 1) / per_node;
}

double FabricTopology::nvlink_bytes_per_sec(cluster::NodeId node) const {
  return config_.nvlink.bytes_per_sec * link_scale(node);
}

double FabricTopology::node_nic_bytes_per_sec(cluster::NodeId node) const {
  double per_nic = config_.nic.bytes_per_sec * config_.nic_efficiency;
  if (config_.nic_shared_with_storage) per_nic *= kSharedNicComputeShare;
  return per_nic * config_.compute_nics * link_scale(node);
}

void FabricTopology::set_link_scale(cluster::NodeId node, double factor) {
  ACME_CHECK_MSG(factor > 0, "link scale must be positive");
  if (factor == 1.0) {
    link_scale_.erase(node);
  } else {
    link_scale_[node] = factor;
  }
}

double FabricTopology::link_scale(cluster::NodeId node) const {
  const auto it = link_scale_.find(node);
  return it == link_scale_.end() ? 1.0 : it->second;
}

double FabricTopology::min_link_scale(cluster::NodeId first, int count) const {
  double min_scale = 1.0;
  // The scale map is sparse (only degraded nodes appear), so scan it rather
  // than the span.
  for (const auto& [node, scale] : link_scale_) {
    if (node >= first && node < first + count)
      min_scale = std::min(min_scale, scale);
  }
  return min_scale;
}

}  // namespace acme::comm
