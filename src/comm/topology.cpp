#include "comm/topology.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"

namespace acme::comm {

namespace {

// Fraction of the 600 GB/s bidirectional NVLink figure that ring collectives
// sustain as bus bandwidth on A100 NVSwitch nodes (~240 GB/s, the number
// nccl-tests report on 8xA100).
constexpr double kNvlinkBusEfficiency = 0.4;
// NCCL launch + NVSwitch hop latency vs cross-node IB (verbs + switch hops).
constexpr double kNvlinkAlphaSeconds = 5e-6;
constexpr double kIbAlphaSeconds = 20e-6;
// Share of Seren's single HDR HCA left for collectives once the 25 Gb/s
// storage lane (Fig 16-left) is carved out: (200 - 25) / 200.
constexpr double kSharedNicComputeShare = 0.875;
// Default tier links for hierarchical (multi-pod / multi-DC) fabrics.
// Rail-optimized pods run 1:1 inside the pod; the spine above them is
// oversubscribed, and the cross-DC long-haul adds millisecond-scale RTT on
// a thinner shared pipe. Both are per-communicator effective bandwidths,
// derived from the node NIC aggregate.
constexpr double kSpineAlphaSeconds = 35e-6;
constexpr double kSpineOversubscription = 4.0;
constexpr double kLonghaulAlphaSeconds = 5e-3;
constexpr double kLonghaulOversubscription = 16.0;

LinkSpec nvlink_link() {
  LinkSpec l;
  l.alpha_seconds = kNvlinkAlphaSeconds;
  l.bytes_per_sec =
      common::gbps_to_Bps(cluster::GpuSpec{}.nvlink_gbps) * kNvlinkBusEfficiency;
  return l;
}

}  // namespace

FabricConfig fabric_from_cluster(const cluster::ClusterSpec& spec) {
  FabricConfig f;
  f.name = spec.name;
  f.gpus_per_node = spec.node.gpus;
  f.nvlink = nvlink_link();
  f.nic.alpha_seconds = kIbAlphaSeconds;
  f.nic.bytes_per_sec = common::gbps_to_Bps(spec.node.nic_gbps);
  f.compute_nics = spec.node.compute_nics;
  // No dedicated storage HCA means checkpoint/loading traffic rides the
  // compute HCA (the Seren pattern; Kalos has a separate storage NIC).
  f.nic_shared_with_storage = spec.node.storage_nics == 0;
  f.topology = spec.topology;
  f.node_count = spec.node_count;
  if (!spec.topology.trivial()) {
    const double nic_aggregate =
        f.nic.bytes_per_sec * f.compute_nics * f.nic_efficiency;
    f.spine.alpha_seconds = kSpineAlphaSeconds;
    f.spine.bytes_per_sec = nic_aggregate / kSpineOversubscription;
    f.longhaul.alpha_seconds = kLonghaulAlphaSeconds;
    f.longhaul.bytes_per_sec = nic_aggregate / kLonghaulOversubscription;
  }
  return f;
}

FabricConfig seren_fabric() { return fabric_from_cluster(cluster::seren_spec()); }

FabricConfig kalos_fabric() { return fabric_from_cluster(cluster::kalos_spec()); }

FabricTopology::FabricTopology(FabricConfig config) : config_(std::move(config)) {
  ACME_CHECK(config_.gpus_per_node > 0);
  ACME_CHECK(config_.nvlink.bytes_per_sec > 0 && config_.nic.bytes_per_sec > 0);
  ACME_CHECK(config_.nvlink.alpha_seconds >= 0 && config_.nic.alpha_seconds >= 0);
  ACME_CHECK(config_.compute_nics > 0);
  ACME_CHECK(config_.nic_efficiency > 0 && config_.nic_efficiency <= 1.0);
  ACME_CHECK(config_.spine.bytes_per_sec >= 0 &&
             config_.longhaul.bytes_per_sec >= 0);
  if (config_.node_count > 0) {
    domains_ = cluster::DomainTree(config_.node_count, config_.topology);
    link_scale_.assign(static_cast<std::size_t>(config_.node_count), 1.0);
  }
}

int FabricTopology::nodes_for(int gpus, int ranks_per_node) const {
  ACME_CHECK(gpus > 0);
  const int per_node = ranks_per_node > 0 ? ranks_per_node : config_.gpus_per_node;
  return (gpus + per_node - 1) / per_node;
}

double FabricTopology::nvlink_bytes_per_sec(cluster::NodeId node) const {
  return config_.nvlink.bytes_per_sec * link_scale(node);
}

double FabricTopology::node_nic_bytes_per_sec(cluster::NodeId node) const {
  double per_nic = config_.nic.bytes_per_sec * config_.nic_efficiency;
  if (config_.nic_shared_with_storage) per_nic *= kSharedNicComputeShare;
  return per_nic * config_.compute_nics * link_scale(node);
}

void FabricTopology::set_link_scale(cluster::NodeId node, double factor) {
  ACME_CHECK_MSG(factor > 0, "link scale must be positive");
  ACME_CHECK(node >= 0);
  if (static_cast<std::size_t>(node) >= link_scale_.size()) {
    if (factor == 1.0) return;
    link_scale_.resize(static_cast<std::size_t>(node) + 1, 1.0);
  }
  double& slot = link_scale_[static_cast<std::size_t>(node)];
  degraded_ += (factor != 1.0) - (slot != 1.0);
  slot = factor;
}

double FabricTopology::link_scale(cluster::NodeId node) const {
  if (degraded_ == 0) return 1.0;
  const auto i = static_cast<std::size_t>(node);
  return i < link_scale_.size() ? link_scale_[i] : 1.0;
}

void FabricTopology::clear_link_scales() {
  std::fill(link_scale_.begin(), link_scale_.end(), 1.0);
  degraded_ = 0;
}

double FabricTopology::min_link_scale(cluster::NodeId first, int count) const {
  if (degraded_ == 0) return 1.0;
  double min_scale = 1.0;
  const auto lo = static_cast<std::size_t>(std::max(first, 0));
  const auto hi = std::min(static_cast<std::size_t>(std::max(first + count, 0)),
                           link_scale_.size());
  for (std::size_t i = lo; i < hi; ++i)
    min_scale = std::min(min_scale, link_scale_[i]);
  return min_scale;
}

double FabricTopology::min_link_scale(const cluster::NodeId* nodes,
                                      std::size_t count) const {
  if (degraded_ == 0) return 1.0;
  double min_scale = 1.0;
  for (std::size_t i = 0; i < count; ++i)
    min_scale = std::min(min_scale, link_scale(nodes[i]));
  return min_scale;
}

FabricTopology::TierSpan FabricTopology::tier_span(cluster::NodeId first,
                                                   int count) const {
  TierSpan span;
  if (domains_.trivial() || domains_.node_count() == 0 || count <= 0)
    return span;
  // Clamp to the tree: legacy callers occasionally price hypothetical
  // worlds wider than the configured cluster.
  const int max_count = domains_.node_count() - first;
  if (first < 0 || max_count <= 0) return span;
  span.pods = domains_.pods_spanned(first, std::min(count, max_count));
  span.datacenters =
      domains_.datacenters_spanned(first, std::min(count, max_count));
  return span;
}

FabricTopology::TierSpan FabricTopology::tier_span(
    const cluster::NodeId* nodes, std::size_t count) const {
  TierSpan span;
  if (domains_.trivial() || domains_.node_count() == 0 || count == 0)
    return span;
  span.pods = domains_.pods_spanned(nodes, count);
  span.datacenters = domains_.datacenters_spanned(nodes, count);
  return span;
}

}  // namespace acme::comm
