#include "comm/collective.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::comm {

namespace {

// Scheduler resubmit + NCCL bootstrap base cost, plus a per-node rendezvous
// term. 30 + (60/256) * nodes puts a 2048-GPU (256-node) world at the 90 s
// the recovery path historically hard-coded (paper §6.1-3's restart cost).
constexpr double kBringupBaseSeconds = 30.0;
constexpr double kBringupPerNodeSeconds = 60.0 / 256.0;
// Each datacenter past the first adds a serialized cross-WAN bootstrap
// exchange to communicator bring-up (rendezvous rides the long-haul RTT and
// its retry budget, not the intra-DC fabric).
constexpr double kCrossDcBringupSeconds = 20.0;

// Trees pipeline imperfectly: interior ranks serve two children over one
// link and chunk turnaround stalls the pipe, so the sustained bandwidth is a
// fraction of the link rate. This is what makes rings win for large payloads
// even though the per-link traffic factors (2S vs 2S(p-1)/p) nearly match.
constexpr double kTreeBandwidthEfficiency = 0.7;

int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return bits;
}

void validate(const World& w, double bytes) {
  ACME_CHECK(w.gpus > 0);
  ACME_CHECK(w.first_node >= 0);
  ACME_CHECK(w.ranks_per_node >= 0);
  ACME_CHECK(w.nic_share >= 1);
  ACME_CHECK(bytes >= 0);
  ACME_CHECK(w.node_set == nullptr || w.node_set_size > 0);
}

// Records one cost-model query. Counted at each public entry point, so a
// delegating op (reduce_scatter -> all_gather) shows up under both labels.
// Only called behind obs::enabled(); the registry lookup is idempotent.
void observe_collective(const char* op, const CollectiveCost& c) {
  const obs::Labels labels{{"op", op}};
  obs::metrics()
      .counter("acme_comm_queries_total", "Collective cost-model queries", labels)
      .inc();
  obs::metrics()
      .histogram("acme_comm_collective_seconds",
                 "Modelled duration of each collective query",
                 obs::Histogram::exponential_buckets(1e-6, 10.0, 10), labels)
      .observe(c.seconds());
}

}  // namespace

int CollectiveModel::nodes(const World& w) const {
  if (w.node_set != nullptr) return w.node_set_size;
  return topo_.nodes_for(w.gpus, w.ranks_per_node);
}

cluster::NodeId CollectiveModel::representative_node(const World& w) const {
  return w.node_set != nullptr && w.node_set_size > 0 ? w.node_set[0]
                                                      : w.first_node;
}

double CollectiveModel::world_min_scale(const World& w, int span_nodes) const {
  if (w.node_set != nullptr) {
    return topo_.min_link_scale(w.node_set,
                                static_cast<std::size_t>(w.node_set_size));
  }
  return topo_.min_link_scale(w.first_node, span_nodes);
}

FabricTopology::TierSpan CollectiveModel::tiers(const World& w) const {
  if (w.node_set != nullptr) {
    return topo_.tier_span(w.node_set,
                           static_cast<std::size_t>(w.node_set_size));
  }
  return topo_.tier_span(w.first_node, nodes(w));
}

CollectiveModel::LinkTerms CollectiveModel::nvlink_terms(const World& w) const {
  const int n = nodes(w);
  const cluster::NodeId rep = representative_node(w);
  // A hierarchical stage synchronizes across nodes, so the slowest node's
  // NVLink paces every intra-node stage in the span.
  const double bw = topo_.nvlink_bytes_per_sec(rep) / topo_.link_scale(rep) *
                    world_min_scale(w, n);
  return {topo_.nvlink_alpha(), 1.0 / bw};
}

CollectiveModel::LinkTerms CollectiveModel::inter_node_terms(const World& w) const {
  const int n = nodes(w);
  const cluster::NodeId rep = representative_node(w);
  const double bw = topo_.node_nic_bytes_per_sec(rep) / topo_.link_scale(rep) *
                    world_min_scale(w, n) /
                    static_cast<double>(w.nic_share);
  return {topo_.nic_alpha(), 1.0 / bw};
}

CollectiveModel::LinkTerms CollectiveModel::spine_terms(const World& w) const {
  // No configured spine (flat fabric): an inter-pod crossing prices at the
  // node-NIC rate, so callers never divide by zero.
  if (topo_.spine_bytes_per_sec() <= 0) return inter_node_terms(w);
  return {topo_.spine_alpha(),
          static_cast<double>(w.nic_share) / topo_.spine_bytes_per_sec()};
}

CollectiveModel::LinkTerms CollectiveModel::longhaul_terms(const World& w) const {
  if (topo_.longhaul_bytes_per_sec() <= 0) return spine_terms(w);
  return {topo_.longhaul_alpha(),
          static_cast<double>(w.nic_share) / topo_.longhaul_bytes_per_sec()};
}

CollectiveModel::LinkTerms CollectiveModel::flat_link(const World& w) const {
  return nodes(w) == 1 ? nvlink_terms(w) : inter_node_terms(w);
}

CollectiveCost CollectiveModel::all_gather(const World& w, double bytes,
                                           Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      // Stage 1: intra-node all-gather of the per-rank shard s over NVLink;
      // stage 2: inter-node all-gather of the per-node slab g*s over IB.
      const int g = (p + n - 1) / n;
      const double s = bytes / p;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      const auto ts = tiers(w);
      if (ts.pods > 1 || ts.datacenters > 1) {
        // Tiered stages: nodes gather inside each pod over the rail NICs,
        // pods gather their slabs over the spine, datacenters exchange DC
        // slabs over the long haul. With one pod and one DC this collapses
        // to the flat two-stage form below (n_pod == n, zero extra hops).
        const int d = ts.datacenters;
        const int pods = ts.pods;
        const int n_pod = (n + pods - 1) / pods;
        const int p_dc = (pods + d - 1) / d;
        const auto sp = spine_terms(w);
        const auto lh = longhaul_terms(w);
        c.hops = (g - 1) + (n_pod - 1) + (p_dc - 1) + (d - 1);
        c.latency_seconds = (g - 1) * nv.alpha + (n_pod - 1) * ib.alpha +
                            (p_dc - 1) * sp.alpha + (d - 1) * lh.alpha;
        c.bandwidth_seconds = (g - 1) * s * nv.beta +
                              (n_pod - 1) * g * s * ib.beta +
                              (p_dc - 1) * n_pod * g * s * sp.beta +
                              (d - 1) * p_dc * n_pod * g * s * lh.beta;
        return c;
      }
      c.hops = (g - 1) + (n - 1);
      c.latency_seconds = (g - 1) * nv.alpha + (n - 1) * ib.alpha;
      c.bandwidth_seconds = (g - 1) * s * nv.beta + (n - 1) * g * s * ib.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kTree) {
      // Gather-then-broadcast trees; latency-friendly, bandwidth-poor (the
      // full result crosses the root twice). Rings win past tiny payloads.
      c.hops = 2 * ceil_log2(p);
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = 2.0 * bytes * link.beta / kTreeBandwidthEfficiency;
      return c;
    }
    c.hops = p - 1;
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = (p - 1) * bytes / p * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_gather", cost);
  return cost;
}

CollectiveCost CollectiveModel::reduce_scatter(const World& w, double bytes,
                                               Algorithm algorithm) const {
  // Mirror image of all-gather: same traffic, opposite direction.
  const CollectiveCost cost = all_gather(w, bytes, algorithm);
  if (obs::enabled()) observe_collective("reduce_scatter", cost);
  return cost;
}

CollectiveCost CollectiveModel::all_reduce(const World& w, double bytes,
                                           Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      // Intra-node reduce-scatter, inter-node all-reduce of the node shards
      // (each node moves the whole payload through its NIC aggregate, the g
      // local shards in parallel), intra-node all-gather.
      const int g = (p + n - 1) / n;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      const auto ts = tiers(w);
      if (ts.pods > 1 || ts.datacenters > 1) {
        // Tier-recursive ring: ring all-reduce inside the pod, then across
        // pods over the spine, then across datacenters over the long haul.
        // Each tier pays the standard 2(k-1)/k traffic factor over its own
        // link; with one pod and one DC the extra terms vanish and n_pod==n
        // reproduces the flat formula.
        const int d = ts.datacenters;
        const int pods = ts.pods;
        const int n_pod = (n + pods - 1) / pods;
        const int p_dc = (pods + d - 1) / d;
        const auto sp = spine_terms(w);
        const auto lh = longhaul_terms(w);
        c.hops = 2 * (g - 1) + 2 * (n_pod - 1) + 2 * (p_dc - 1) + 2 * (d - 1);
        c.latency_seconds = 2 * (g - 1) * nv.alpha + 2 * (n_pod - 1) * ib.alpha +
                            2 * (p_dc - 1) * sp.alpha + 2 * (d - 1) * lh.alpha;
        c.bandwidth_seconds = 2.0 * (g - 1) / g * bytes * nv.beta +
                              2.0 * (n_pod - 1) / n_pod * bytes * ib.beta +
                              2.0 * (p_dc - 1) / p_dc * bytes * sp.beta +
                              2.0 * (d - 1) / d * bytes * lh.beta;
        return c;
      }
      c.hops = 2 * (g - 1) + 2 * (n - 1);
      c.latency_seconds = 2 * (g - 1) * nv.alpha + 2 * (n - 1) * ib.alpha;
      c.bandwidth_seconds = 2.0 * (g - 1) / g * bytes * nv.beta +
                            2.0 * (n - 1) / n * bytes * ib.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kTree) {
      // Pipelined reduce + broadcast trees: log-depth latency, but the payload
      // crosses the bottleneck twice with no (p-1)/p discount.
      c.hops = 2 * ceil_log2(p);
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = 2.0 * bytes * link.beta / kTreeBandwidthEfficiency;
      return c;
    }
    c.hops = 2 * (p - 1);
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = 2.0 * (p - 1) * bytes / p * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_reduce", cost);
  return cost;
}

CollectiveCost CollectiveModel::broadcast(const World& w, double bytes,
                                          Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      const int g = (p + n - 1) / n;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      const auto ts = tiers(w);
      if (ts.pods > 1 || ts.datacenters > 1) {
        // Tiered tree: one DC root fans out across datacenters, pod roots
        // fan out across the spine, node roots across the pod rails, then
        // NVLink inside each node. The payload crosses each tier once.
        const int d = ts.datacenters;
        const int pods = ts.pods;
        const int n_pod = (n + pods - 1) / pods;
        const int p_dc = (pods + d - 1) / d;
        const auto sp = spine_terms(w);
        const auto lh = longhaul_terms(w);
        c.hops = ceil_log2(d) + ceil_log2(p_dc) + ceil_log2(n_pod) +
                 ceil_log2(g);
        c.latency_seconds = ceil_log2(d) * lh.alpha +
                            ceil_log2(p_dc) * sp.alpha +
                            ceil_log2(n_pod) * ib.alpha +
                            ceil_log2(g) * nv.alpha;
        c.bandwidth_seconds = bytes * (ib.beta + nv.beta +
                                       (p_dc > 1 ? sp.beta : 0.0) +
                                       (d > 1 ? lh.beta : 0.0));
        return c;
      }
      c.hops = ceil_log2(n) + ceil_log2(g);
      c.latency_seconds = ceil_log2(n) * ib.alpha + ceil_log2(g) * nv.alpha;
      c.bandwidth_seconds = bytes * ib.beta + bytes * nv.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kRing) {
      // Pipelined chain: (p-1) launch hops, payload crosses each link once.
      c.hops = p - 1;
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = bytes * link.beta;
      return c;
    }
    c.hops = ceil_log2(p);
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = bytes * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("broadcast", cost);
  return cost;
}

CollectiveCost CollectiveModel::all_to_all(const World& w, double bytes) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);
    c.hops = p - 1;
    if (n == 1) {
      const auto nv = nvlink_terms(w);
      c.latency_seconds = c.hops * nv.alpha;
      c.bandwidth_seconds = (p - 1) * bytes / p * nv.beta;
      return c;
    }
    // Each node's g ranks send the off-node slice of their buffers through the
    // shared NIC aggregate: g * S * (p - g) / p bytes per direction.
    const int g = (p + n - 1) / n;
    auto ib = inter_node_terms(w);
    // All-to-all traffic is uniformly spread, so when the world crosses
    // pods/datacenters the slowest tier's per-byte cost bottlenecks the
    // exchange (the spine/long-haul carry nearly the full slab).
    const auto ts = tiers(w);
    if (ts.pods > 1) {
      const auto sp = spine_terms(w);
      ib.alpha = std::max(ib.alpha, sp.alpha);
      ib.beta = std::max(ib.beta, sp.beta);
    }
    if (ts.datacenters > 1) {
      const auto lh = longhaul_terms(w);
      ib.alpha = std::max(ib.alpha, lh.alpha);
      ib.beta = std::max(ib.beta, lh.beta);
    }
    c.latency_seconds = c.hops * ib.alpha;
    c.bandwidth_seconds = static_cast<double>(g) * bytes * (p - g) / p * ib.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_to_all", cost);
  return cost;
}

double CollectiveModel::bringup_seconds(const World& w) const {
  ACME_CHECK(w.gpus > 0);
  double t = kBringupBaseSeconds + kBringupPerNodeSeconds * nodes(w);
  const auto ts = tiers(w);
  if (ts.datacenters > 1) t += (ts.datacenters - 1) * kCrossDcBringupSeconds;
  return t;
}

double CollectiveModel::probe_round_seconds(int probe_nodes,
                                            double probe_bytes) const {
  ACME_CHECK(probe_nodes > 0);
  ACME_CHECK(probe_bytes > 0);
  // All worlds of the round rendezvous through one launcher, so bring-up
  // scales with the probe set; the data phase is the slowest (three-node)
  // world's all-gather, run hierarchically like the production test does.
  const int world_nodes = std::min(probe_nodes, 3);
  World probe_world;
  probe_world.gpus = world_nodes * topo_.gpus_per_node();
  const double gather =
      all_gather(probe_world, probe_bytes,
                 world_nodes > 1 ? Algorithm::kHierarchical : Algorithm::kRing)
          .seconds();
  return kBringupBaseSeconds + kBringupPerNodeSeconds * probe_nodes + gather;
}

double CollectiveModel::probe_round_seconds(const cluster::NodeId* probe,
                                            std::size_t count,
                                            double probe_bytes) const {
  ACME_CHECK(probe != nullptr && count > 0);
  ACME_CHECK(probe_bytes > 0);
  // Same structure as the span form, but slowest-member pacing and the
  // datacenter crossings come from the explicit set: the slowest 2-3-node
  // probe world contains the slowest member, and a probe set spanning
  // datacenters rendezvouses over the long haul.
  const int world_nodes = static_cast<int>(std::min<std::size_t>(count, 3));
  World probe_world;
  probe_world.gpus = world_nodes * topo_.gpus_per_node();
  CollectiveCost gather =
      all_gather(probe_world, probe_bytes,
                 world_nodes > 1 ? Algorithm::kHierarchical : Algorithm::kRing);
  gather.bandwidth_seconds /= topo_.min_link_scale(probe, count);
  double t = kBringupBaseSeconds +
             kBringupPerNodeSeconds * static_cast<double>(count) +
             gather.seconds();
  const auto ts = topo_.tier_span(probe, count);
  if (ts.datacenters > 1) t += (ts.datacenters - 1) * kCrossDcBringupSeconds;
  return t;
}

double bus_bandwidth_allreduce(int gpus, double bytes, double seconds) {
  ACME_CHECK(gpus > 0 && seconds > 0);
  if (gpus == 1) return 0;
  return 2.0 * (gpus - 1) / gpus * bytes / seconds;
}

double bus_bandwidth_allgather(int gpus, double bytes, double seconds) {
  ACME_CHECK(gpus > 0 && seconds > 0);
  if (gpus == 1) return 0;
  return static_cast<double>(gpus - 1) / gpus * bytes / seconds;
}

}  // namespace acme::comm
