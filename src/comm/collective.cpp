#include "comm/collective.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::comm {

namespace {

// Scheduler resubmit + NCCL bootstrap base cost, plus a per-node rendezvous
// term. 30 + (60/256) * nodes puts a 2048-GPU (256-node) world at the 90 s
// the recovery path historically hard-coded (paper §6.1-3's restart cost).
constexpr double kBringupBaseSeconds = 30.0;
constexpr double kBringupPerNodeSeconds = 60.0 / 256.0;

// Trees pipeline imperfectly: interior ranks serve two children over one
// link and chunk turnaround stalls the pipe, so the sustained bandwidth is a
// fraction of the link rate. This is what makes rings win for large payloads
// even though the per-link traffic factors (2S vs 2S(p-1)/p) nearly match.
constexpr double kTreeBandwidthEfficiency = 0.7;

int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return bits;
}

void validate(const World& w, double bytes) {
  ACME_CHECK(w.gpus > 0);
  ACME_CHECK(w.first_node >= 0);
  ACME_CHECK(w.ranks_per_node >= 0);
  ACME_CHECK(w.nic_share >= 1);
  ACME_CHECK(bytes >= 0);
}

// Records one cost-model query. Counted at each public entry point, so a
// delegating op (reduce_scatter -> all_gather) shows up under both labels.
// Only called behind obs::enabled(); the registry lookup is idempotent.
void observe_collective(const char* op, const CollectiveCost& c) {
  const obs::Labels labels{{"op", op}};
  obs::metrics()
      .counter("acme_comm_queries_total", "Collective cost-model queries", labels)
      .inc();
  obs::metrics()
      .histogram("acme_comm_collective_seconds",
                 "Modelled duration of each collective query",
                 obs::Histogram::exponential_buckets(1e-6, 10.0, 10), labels)
      .observe(c.seconds());
}

}  // namespace

int CollectiveModel::nodes(const World& w) const {
  return topo_.nodes_for(w.gpus, w.ranks_per_node);
}

CollectiveModel::LinkTerms CollectiveModel::nvlink_terms(const World& w) const {
  const int n = nodes(w);
  // A hierarchical stage synchronizes across nodes, so the slowest node's
  // NVLink paces every intra-node stage in the span.
  const double bw = topo_.nvlink_bytes_per_sec(w.first_node) /
                    topo_.link_scale(w.first_node) *
                    topo_.min_link_scale(w.first_node, n);
  return {topo_.nvlink_alpha(), 1.0 / bw};
}

CollectiveModel::LinkTerms CollectiveModel::inter_node_terms(const World& w) const {
  const int n = nodes(w);
  const double bw = topo_.node_nic_bytes_per_sec(w.first_node) /
                    topo_.link_scale(w.first_node) *
                    topo_.min_link_scale(w.first_node, n) /
                    static_cast<double>(w.nic_share);
  return {topo_.nic_alpha(), 1.0 / bw};
}

CollectiveModel::LinkTerms CollectiveModel::flat_link(const World& w) const {
  return nodes(w) == 1 ? nvlink_terms(w) : inter_node_terms(w);
}

CollectiveCost CollectiveModel::all_gather(const World& w, double bytes,
                                           Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      // Stage 1: intra-node all-gather of the per-rank shard s over NVLink;
      // stage 2: inter-node all-gather of the per-node slab g*s over IB.
      const int g = (p + n - 1) / n;
      const double s = bytes / p;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      c.hops = (g - 1) + (n - 1);
      c.latency_seconds = (g - 1) * nv.alpha + (n - 1) * ib.alpha;
      c.bandwidth_seconds = (g - 1) * s * nv.beta + (n - 1) * g * s * ib.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kTree) {
      // Gather-then-broadcast trees; latency-friendly, bandwidth-poor (the
      // full result crosses the root twice). Rings win past tiny payloads.
      c.hops = 2 * ceil_log2(p);
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = 2.0 * bytes * link.beta / kTreeBandwidthEfficiency;
      return c;
    }
    c.hops = p - 1;
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = (p - 1) * bytes / p * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_gather", cost);
  return cost;
}

CollectiveCost CollectiveModel::reduce_scatter(const World& w, double bytes,
                                               Algorithm algorithm) const {
  // Mirror image of all-gather: same traffic, opposite direction.
  const CollectiveCost cost = all_gather(w, bytes, algorithm);
  if (obs::enabled()) observe_collective("reduce_scatter", cost);
  return cost;
}

CollectiveCost CollectiveModel::all_reduce(const World& w, double bytes,
                                           Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      // Intra-node reduce-scatter, inter-node all-reduce of the node shards
      // (each node moves the whole payload through its NIC aggregate, the g
      // local shards in parallel), intra-node all-gather.
      const int g = (p + n - 1) / n;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      c.hops = 2 * (g - 1) + 2 * (n - 1);
      c.latency_seconds = 2 * (g - 1) * nv.alpha + 2 * (n - 1) * ib.alpha;
      c.bandwidth_seconds = 2.0 * (g - 1) / g * bytes * nv.beta +
                            2.0 * (n - 1) / n * bytes * ib.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kTree) {
      // Pipelined reduce + broadcast trees: log-depth latency, but the payload
      // crosses the bottleneck twice with no (p-1)/p discount.
      c.hops = 2 * ceil_log2(p);
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = 2.0 * bytes * link.beta / kTreeBandwidthEfficiency;
      return c;
    }
    c.hops = 2 * (p - 1);
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = 2.0 * (p - 1) * bytes / p * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_reduce", cost);
  return cost;
}

CollectiveCost CollectiveModel::broadcast(const World& w, double bytes,
                                          Algorithm algorithm) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);

    if (algorithm == Algorithm::kHierarchical && n > 1) {
      const int g = (p + n - 1) / n;
      const auto nv = nvlink_terms(w);
      const auto ib = inter_node_terms(w);
      c.hops = ceil_log2(n) + ceil_log2(g);
      c.latency_seconds = ceil_log2(n) * ib.alpha + ceil_log2(g) * nv.alpha;
      c.bandwidth_seconds = bytes * ib.beta + bytes * nv.beta;
      return c;
    }
    const auto link = flat_link(w);
    if (algorithm == Algorithm::kRing) {
      // Pipelined chain: (p-1) launch hops, payload crosses each link once.
      c.hops = p - 1;
      c.latency_seconds = c.hops * link.alpha;
      c.bandwidth_seconds = bytes * link.beta;
      return c;
    }
    c.hops = ceil_log2(p);
    c.latency_seconds = c.hops * link.alpha;
    c.bandwidth_seconds = bytes * link.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("broadcast", cost);
  return cost;
}

CollectiveCost CollectiveModel::all_to_all(const World& w, double bytes) const {
  const CollectiveCost cost = [&]() -> CollectiveCost {
    validate(w, bytes);
    const int p = w.gpus;
    CollectiveCost c;
    if (p == 1) return c;
    const int n = nodes(w);
    c.hops = p - 1;
    if (n == 1) {
      const auto nv = nvlink_terms(w);
      c.latency_seconds = c.hops * nv.alpha;
      c.bandwidth_seconds = (p - 1) * bytes / p * nv.beta;
      return c;
    }
    // Each node's g ranks send the off-node slice of their buffers through the
    // shared NIC aggregate: g * S * (p - g) / p bytes per direction.
    const int g = (p + n - 1) / n;
    const auto ib = inter_node_terms(w);
    c.latency_seconds = c.hops * ib.alpha;
    c.bandwidth_seconds = static_cast<double>(g) * bytes * (p - g) / p * ib.beta;
    return c;
  }();
  if (obs::enabled()) observe_collective("all_to_all", cost);
  return cost;
}

double CollectiveModel::bringup_seconds(const World& w) const {
  ACME_CHECK(w.gpus > 0);
  return kBringupBaseSeconds + kBringupPerNodeSeconds * nodes(w);
}

double CollectiveModel::probe_round_seconds(int probe_nodes,
                                            double probe_bytes) const {
  ACME_CHECK(probe_nodes > 0);
  ACME_CHECK(probe_bytes > 0);
  // All worlds of the round rendezvous through one launcher, so bring-up
  // scales with the probe set; the data phase is the slowest (three-node)
  // world's all-gather, run hierarchically like the production test does.
  const int world_nodes = std::min(probe_nodes, 3);
  World probe_world;
  probe_world.gpus = world_nodes * topo_.gpus_per_node();
  const double gather =
      all_gather(probe_world, probe_bytes,
                 world_nodes > 1 ? Algorithm::kHierarchical : Algorithm::kRing)
          .seconds();
  return kBringupBaseSeconds + kBringupPerNodeSeconds * probe_nodes + gather;
}

double bus_bandwidth_allreduce(int gpus, double bytes, double seconds) {
  ACME_CHECK(gpus > 0 && seconds > 0);
  if (gpus == 1) return 0;
  return 2.0 * (gpus - 1) / gpus * bytes / seconds;
}

double bus_bandwidth_allgather(int gpus, double bytes, double seconds) {
  ACME_CHECK(gpus > 0 && seconds > 0);
  if (gpus == 1) return 0;
  return static_cast<double>(gpus - 1) / gpus * bytes / seconds;
}

}  // namespace acme::comm
