// Analytic collective cost models over the fabric topology.
//
// Alpha-beta costs for the collectives LLM training actually issues (ring
// and tree all-reduce, all-gather, reduce-scatter, broadcast, all-to-all),
// plus the hierarchical two-stage variants (intra-node NVLink stage, then
// inter-node IB stage) that make multi-node worlds affordable. Each call
// returns a breakdown — latency term, bandwidth term, serialized hops — so
// callers can reason about which regime they are in, and bus-bandwidth
// helpers convert measured times into the figure nccl-tests print.
//
// Byte convention (NCCL's): `bytes` is the logical collective payload S —
// the buffer being reduced for all-reduce/broadcast, the full concatenated
// result for all-gather, the full input for reduce-scatter, and the per-rank
// send buffer for all-to-all.
#pragma once

#include "comm/topology.h"

namespace acme::comm {

enum class Algorithm { kRing, kTree, kHierarchical };

struct CollectiveCost {
  double latency_seconds = 0;    // sum of per-hop alpha terms
  double bandwidth_seconds = 0;  // serialized bytes over the bottleneck link
  int hops = 0;                  // serialized communication steps
  double seconds() const { return latency_seconds + bandwidth_seconds; }
};

// A communicator: `gpus` ranks placed contiguously from `first_node`, or —
// when `node_set` is non-null — on an explicit (possibly non-contiguous)
// node list, which is how multi-pod placements price slowest-member and
// tier crossings correctly.
struct World {
  int gpus = 8;
  cluster::NodeId first_node = 0;
  // Ranks per node; 0 means packed placement (the topology's gpus_per_node).
  // Gradient all-reduce groups in tp x pp layouts place one rank per node.
  int ranks_per_node = 0;
  // Co-resident communicators sharing each node's NICs (e.g. the 8 per-node
  // gradient rings of a tp=8 layout). Divides the per-node IB bandwidth.
  int nic_share = 1;
  // Optional explicit node placement; overrides the contiguous span. The
  // pointed-to array must outlive the query (no copy is taken).
  const cluster::NodeId* node_set = nullptr;
  int node_set_size = 0;
};

class CollectiveModel {
 public:
  explicit CollectiveModel(FabricConfig config) : topo_(std::move(config)) {}
  explicit CollectiveModel(FabricTopology topology) : topo_(std::move(topology)) {}

  FabricTopology& topology() { return topo_; }
  const FabricTopology& topology() const { return topo_; }

  CollectiveCost all_reduce(const World& w, double bytes,
                            Algorithm algorithm = Algorithm::kRing) const;
  CollectiveCost all_gather(const World& w, double bytes,
                            Algorithm algorithm = Algorithm::kRing) const;
  CollectiveCost reduce_scatter(const World& w, double bytes,
                                Algorithm algorithm = Algorithm::kRing) const;
  CollectiveCost broadcast(const World& w, double bytes,
                           Algorithm algorithm = Algorithm::kTree) const;
  // Pairwise exchange (MoE dispatch/combine): every rank sends bytes/p to
  // every peer.
  CollectiveCost all_to_all(const World& w, double bytes) const;

  // NCCL communicator bring-up plus scheduler launch: bootstrap rendezvous
  // and ring/tree graph construction grow with node count. Calibrated so a
  // 2048-GPU (256-node) world costs the ~90 s the recovery path historically
  // hard-coded.
  double bringup_seconds(const World& w) const;

  // One round of §6.1-3 fault localization: `probe_nodes` nodes are split
  // into 2-3-node worlds that run a probe all-gather in parallel. The round
  // pays the bring-up across the whole probe set (every world rendezvouses
  // through the same launcher) plus the slowest world's all-gather.
  double probe_round_seconds(int probe_nodes,
                             double probe_bytes = 128.0 * 1024 * 1024) const;
  // Explicit-set variant: the slowest member and any datacenter crossings
  // come from the actual probe set instead of an assumed [0, n) span.
  double probe_round_seconds(const cluster::NodeId* probe, std::size_t count,
                             double probe_bytes = 128.0 * 1024 * 1024) const;

  // Number of nodes `w` spans.
  int nodes(const World& w) const;

 private:
  struct LinkTerms {
    double alpha = 0;
    double beta = 0;  // seconds per byte over the bottleneck link
  };
  // Bottleneck link of a flat (single-stage) collective over `w`.
  LinkTerms flat_link(const World& w) const;
  LinkTerms nvlink_terms(const World& w) const;
  LinkTerms inter_node_terms(const World& w) const;
  // Tier links above the node NIC; fall back to the NIC terms when the
  // fabric has no configured spine/long-haul (flat clusters).
  LinkTerms spine_terms(const World& w) const;
  LinkTerms longhaul_terms(const World& w) const;
  // Pods/datacenters the world's placement crosses ({1, 1} on flat fabrics:
  // every pre-hierarchy formula is reproduced bit-for-bit through that path).
  FabricTopology::TierSpan tiers(const World& w) const;
  double world_min_scale(const World& w, int span_nodes) const;
  cluster::NodeId representative_node(const World& w) const;

  FabricTopology topo_;
};

// NCCL-style bus bandwidth: algbw = bytes/seconds, scaled by the algorithm's
// traffic factor so the figure is comparable to the hardware link rate.
double bus_bandwidth_allreduce(int gpus, double bytes, double seconds);
double bus_bandwidth_allgather(int gpus, double bytes, double seconds);

}  // namespace acme::comm
