// Topology-aware collective-communication fabric model (paper §2.1; the
// NVLink-inside / InfiniBand-across fabric that shapes every pretraining and
// recovery analysis in §4.1 and §6.1-3).
//
// Two link classes, mirroring the Acme clusters:
//  - NVLink/NVSwitch inside a node: 600 GB/s bidirectional per A100, of
//    which NCCL-style collectives sustain a calibrated fraction.
//  - InfiniBand across nodes: Seren has one 200 Gb/s HDR HCA per node,
//    shared with storage traffic; Kalos has four dedicated 200 Gb/s compute
//    HCAs (plus a separate storage HCA modelled in acme::storage).
//
// Every link carries an alpha (per-hop message latency) and beta
// (1/bandwidth) term — the standard alpha-beta cost model used by
// fine-grained LLM-cluster simulators. Per-node degradation hooks
// (`set_link_scale`) shrink a node's link bandwidth for straggler and
// fault-injection experiments: any collective whose world spans the degraded
// node is slowed; collectives elsewhere are untouched.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/domain.h"
#include "cluster/spec.h"
#include "cluster/state.h"

namespace acme::comm {

struct LinkSpec {
  double alpha_seconds = 0;  // per-hop message launch latency
  double bytes_per_sec = 0;  // sustained link bandwidth (beta = 1/this)
};

struct FabricConfig {
  std::string name;
  int gpus_per_node = 8;
  // Intra-node NVLink as seen by a ring collective (achievable bus
  // bandwidth, not the marketing bidirectional figure).
  LinkSpec nvlink;
  // One IB HCA (raw line rate; nic_efficiency derates it).
  LinkSpec nic;
  int compute_nics = 1;
  // Fraction of the raw NIC line rate collectives sustain (protocol
  // overhead, congestion, rail imbalance).
  double nic_efficiency = 0.8;
  // Seren's single HDR HCA also carries the 25 Gb/s storage lane
  // (Fig 16-left), so collectives get only the remaining capacity.
  bool nic_shared_with_storage = false;
  // Hierarchical tiers above the node NIC. `spine` is the oversubscribed
  // inter-pod fabric inside a datacenter; `longhaul` is the cross-DC WAN
  // pipe. bytes_per_sec == 0 disables a tier (flat single-pod fabric —
  // every pre-hierarchy config), in which case a crossing prices at the
  // node-NIC rate.
  LinkSpec spine;
  LinkSpec longhaul;
  // Physical domain layout and node count of the cluster the fabric
  // describes. node_count == 0 = unknown (legacy flat callers): the
  // topology degenerates to a single pod.
  cluster::DomainShape topology;
  int node_count = 0;
};

// Seren: 1x200 Gb/s HDR shared with storage. Kalos: 4x200 Gb/s compute NICs.
FabricConfig seren_fabric();
FabricConfig kalos_fabric();
// Derives a fabric from a Table-1 cluster spec: compute NIC count and line
// rate from the NodeSpec; a node with no dedicated storage HCA shares its
// compute HCA with storage (the Seren pattern).
FabricConfig fabric_from_cluster(const cluster::ClusterSpec& spec);

class FabricTopology {
 public:
  explicit FabricTopology(FabricConfig config);

  const FabricConfig& config() const { return config_; }
  int gpus_per_node() const { return config_.gpus_per_node; }
  // Nodes spanned by `gpus` ranks at `ranks_per_node` per node (ceiling).
  int nodes_for(int gpus, int ranks_per_node) const;

  double nvlink_alpha() const { return config_.nvlink.alpha_seconds; }
  double nic_alpha() const { return config_.nic.alpha_seconds; }

  // Effective bandwidths with per-node degradation applied.
  double nvlink_bytes_per_sec(cluster::NodeId node) const;
  // Aggregate collective bandwidth of one node's compute NICs, after
  // efficiency derating, the storage share, and degradation.
  double node_nic_bytes_per_sec(cluster::NodeId node) const;

  // Degraded-link injection for straggler experiments: scales both the
  // node's NVLink and its NIC aggregate by `factor` (0 < factor; <1 =
  // degraded, 1 = healthy, >1 = hypothetical upgrade).
  void set_link_scale(cluster::NodeId node, double factor);
  double link_scale(cluster::NodeId node) const;
  void clear_link_scales();
  // Slowest link scale across the contiguous node span [first, first+count):
  // a collective runs at the pace of its slowest member.
  double min_link_scale(cluster::NodeId first, int count) const;
  // Slowest member over an explicit node set — non-contiguous multi-pod
  // placements price correctly instead of assuming [first, first+count).
  double min_link_scale(const cluster::NodeId* nodes, std::size_t count) const;

  // The domain hierarchy the fabric spans (degenerate single-pod tree for
  // flat configs with no node count).
  const cluster::DomainTree& domains() const { return domains_; }
  // Tiers crossed by a communicator's node span; hierarchical collectives
  // price one stage per crossed tier. {1, 1} on flat fabrics.
  struct TierSpan {
    int pods = 1;
    int datacenters = 1;
  };
  TierSpan tier_span(cluster::NodeId first, int count) const;
  TierSpan tier_span(const cluster::NodeId* nodes, std::size_t count) const;

  // Effective per-communicator tier bandwidths (0 = tier disabled).
  double spine_bytes_per_sec() const { return config_.spine.bytes_per_sec; }
  double longhaul_bytes_per_sec() const {
    return config_.longhaul.bytes_per_sec;
  }
  double spine_alpha() const { return config_.spine.alpha_seconds; }
  double longhaul_alpha() const { return config_.longhaul.alpha_seconds; }

 private:
  FabricConfig config_;
  cluster::DomainTree domains_;
  // Dense per-node degradation factors (1.0 = healthy), grown on demand;
  // nodes beyond the vector are healthy. degraded_ counts entries != 1.0 so
  // the healthy-fabric fast path is one branch.
  std::vector<double> link_scale_;
  int degraded_ = 0;
};

}  // namespace acme::comm
