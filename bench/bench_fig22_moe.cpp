// Fig 22 (Appendix A.6): SM utilization of pretraining a Mistral-7B-like MoE
// model with 1024 GPUs on Seren's single-NIC nodes.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig22_moe");
  bench::header("Fig 22", "MoE pretraining SM utilization (1024 GPUs, Seren)");

  parallel::PretrainExecutionModel moe(parallel::moe_mistral_7b());
  const double nic = common::gbps_to_Bps(cluster::seren_spec().node.nic_gbps);
  const auto tl = moe.step_moe(1024, nic);

  parallel::PretrainExecutionModel dense(parallel::llm_7b());
  parallel::HierZeroConfig dense_cfg;
  dense_cfg.world = 1024;
  const auto dense_tl = dense.step_hier_zero(dense_cfg);

  common::Rng rng(22);
  std::printf("MoE (all-to-all over the shared NIC):\n  |%s|\n",
              common::sparkline(tl.sample(0.001, 3 * tl.step_time(), rng), 100).c_str());
  std::printf("dense 7B for comparison:\n  |%s|\n\n",
              common::sparkline(dense_tl.sample(0.001, 3 * dense_tl.step_time(), rng),
                                100)
                  .c_str());

  common::Table table({"Model", "step time", "mean SM", "idle fraction"});
  table.add_row({"MoE Mistral-7B (8 experts, top-2)",
                 common::Table::num(tl.step_time(), 2) + " s",
                 common::Table::pct(tl.mean_sm()),
                 common::Table::pct(tl.idle_fraction())});
  table.add_row({"dense 7B (hier. ZeRO)",
                 common::Table::num(dense_tl.step_time(), 2) + " s",
                 common::Table::pct(dense_tl.mean_sm()),
                 common::Table::pct(dense_tl.idle_fraction())});
  std::printf("%s", table.render().c_str());

  bench::recap("MoE vs dense mean SM utilization", "much lower for MoE",
               common::Table::pct(tl.mean_sm()) + " vs " +
                   common::Table::pct(dense_tl.mean_sm()));
  bench::recap("cause", "frequent all-to-all on one IB NIC per node",
               common::Table::pct(tl.idle_fraction()) + " of the step near-idle");
  return bench::finish(obs_cli);
}
