// Shared helpers for the bench harness: every bench regenerates one of the
// paper's tables or figures from the simulated datacenter and prints it in a
// paper-comparable form, ending with a PAPER vs MEASURED recap.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/acme.h"

namespace acme::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

// PAPER vs MEASURED recap line. `ci95` is optional: multi-seed benches pass
// a formatted half-width (e.g. "±12.3 s") and get an extra column; single-seed
// benches keep the exact historical layout.
inline void recap(const std::string& what, const std::string& paper,
                  const std::string& measured, const std::string& ci95 = "") {
  if (ci95.empty()) {
    std::printf("  [recap] %-46s paper: %-18s measured: %s\n", what.c_str(),
                paper.c_str(), measured.c_str());
  } else {
    std::printf("  [recap] %-46s paper: %-18s measured: %-18s ci95: %s\n",
                what.c_str(), paper.c_str(), measured.c_str(), ci95.c_str());
  }
}

// Prints the replication run footer every converted bench shares and, when
// the CLI asked for it, writes the JSON report.
inline void mc_footer(const mc::BenchReport& report, const mc::McCli& cli) {
  const auto& t = report.timing();
  std::printf(
      "\n[mc] %zu replicas on %zu threads: wall %.2f s, serial-equivalent "
      "%.2f s, speedup %.2fx\n",
      cli.options.replicas, t.threads_used, t.wall_seconds, t.serial_seconds,
      t.speedup());
  if (!cli.json_path.empty() && report.write(cli.json_path))
    std::printf("[mc] report written to %s\n", cli.json_path.c_str());
}

// CDF curve of a sample set over log-spaced x points.
inline common::Series cdf_series(const std::string& name,
                                 const common::SampleStats& stats, double lo,
                                 double hi, std::size_t points = 64) {
  common::Series s;
  s.name = name;
  s.xs = common::log_space(lo, hi, points);
  s.ys = stats.cdf_curve(s.xs);
  return s;
}

inline common::Series cdf_series_linear(const std::string& name,
                                        const common::SampleStats& stats,
                                        double lo, double hi,
                                        std::size_t points = 64) {
  common::Series s;
  s.name = name;
  s.xs = common::lin_space(lo, hi, points);
  s.ys = stats.cdf_curve(s.xs);
  return s;
}

// The six-month replays shared by the characterization benches. Seren runs
// at 1/8 job scale (distributions unchanged); Kalos at full scale.
inline const core::SixMonthReplay& seren_replay() {
  static const core::SixMonthReplay replay =
      core::run_six_month_replay(core::seren_setup(), 8.0);
  return replay;
}

inline const core::SixMonthReplay& kalos_replay() {
  static const core::SixMonthReplay replay =
      core::run_six_month_replay(core::kalos_setup(), 1.0);
  return replay;
}

}  // namespace acme::bench
