// Shared helpers for the bench harness: every bench regenerates one of the
// paper's tables or figures from the simulated datacenter and prints it in a
// paper-comparable form, ending with a PAPER vs MEASURED recap.
#pragma once

#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/acme.h"

namespace acme::bench {

// Shared bench command line. Every bench accepts
//   --trace-out FILE.json    write a Chrome trace of this run (Perfetto)
//   --metrics-out FILE.prom  write the obs registry as Prometheus text
// and the Monte Carlo benches additionally take --replicas / --threads /
// --seed / --json (see mc/report.h). Passing either obs flag switches the
// self-observability layer on for the whole run. Parsing is strict: an
// unknown flag, a missing value or a stray positional prints the reason plus
// usage and exits 2.
struct BenchCli {
  std::string trace_path;
  std::string metrics_path;
  mc::McCli mc;  // only meaningful when parse_cli was given mc defaults
};

inline BenchCli parse_cli(int argc, char** argv, const std::string& bench_name,
                          const mc::ReplicationOptions* mc_defaults = nullptr) {
  BenchCli cli;
  common::FlagSet flags(bench_name);
  flags.add("--trace-out", &cli.trace_path,
            "write a Chrome trace-event JSON of this run (Perfetto-loadable)");
  flags.add("--metrics-out", &cli.metrics_path,
            "write the self-observability metrics as Prometheus text");
  if (mc_defaults != nullptr) {
    cli.mc.options = *mc_defaults;
    mc::add_mc_flags(flags, cli.mc);
  }
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s: %s\n%s", bench_name.c_str(), error.c_str(),
                 flags.usage().c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    std::exit(0);
  }
  if (cli.mc.options.replicas == 0) cli.mc.options.replicas = 1;
  if (!cli.trace_path.empty() || !cli.metrics_path.empty())
    obs::set_enabled(true);
  return cli;
}

inline BenchCli parse_cli(int argc, char** argv, const std::string& bench_name,
                          const mc::ReplicationOptions& mc_defaults) {
  return parse_cli(argc, argv, bench_name, &mc_defaults);
}

// End-of-main hook: writes the trace / metrics files the CLI asked for.
// Returns the bench's exit code so mains can `return bench::finish(cli);`.
inline int finish(const BenchCli& cli) {
  if (!cli.trace_path.empty() && obs::tracer().write_json(cli.trace_path)) {
    std::printf("[obs] trace written to %s (%zu events, %zu dropped)\n",
                cli.trace_path.c_str(), obs::tracer().event_count(),
                obs::tracer().dropped());
  }
  if (!cli.metrics_path.empty() &&
      obs::metrics().write_prometheus(cli.metrics_path)) {
    std::printf("[obs] metrics written to %s (%zu series)\n",
                cli.metrics_path.c_str(), obs::metrics().size());
  }
  return 0;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

// PAPER vs MEASURED recap line. `ci95` is optional: multi-seed benches pass
// a formatted half-width (e.g. "±12.3 s") and get an extra column; single-seed
// benches keep the exact historical layout.
inline void recap(const std::string& what, const std::string& paper,
                  const std::string& measured, const std::string& ci95 = "") {
  if (ci95.empty()) {
    std::printf("  [recap] %-46s paper: %-18s measured: %s\n", what.c_str(),
                paper.c_str(), measured.c_str());
  } else {
    std::printf("  [recap] %-46s paper: %-18s measured: %-18s ci95: %s\n",
                what.c_str(), paper.c_str(), measured.c_str(), ci95.c_str());
  }
}

// Prints the replication run footer every converted bench shares and, when
// the CLI asked for it, writes the JSON report.
inline void mc_footer(const mc::BenchReport& report, const mc::McCli& cli) {
  const auto& t = report.timing();
  std::printf(
      "\n[mc] %zu replicas on %zu threads x %zu workers: wall %.2f s, "
      "serial-equivalent %.2f s, speedup %.2fx\n",
      cli.options.replicas, t.threads_used, t.workers_used, t.wall_seconds,
      t.serial_seconds, t.speedup());
  if (!cli.json_path.empty() && report.write(cli.json_path))
    std::printf("[mc] report written to %s\n", cli.json_path.c_str());
}

// CDF curve of a sample set over log-spaced x points.
inline common::Series cdf_series(const std::string& name,
                                 const common::SampleStats& stats, double lo,
                                 double hi, std::size_t points = 64) {
  common::Series s;
  s.name = name;
  s.xs = common::log_space(lo, hi, points);
  s.ys = stats.cdf_curve(s.xs);
  return s;
}

inline common::Series cdf_series_linear(const std::string& name,
                                        const common::SampleStats& stats,
                                        double lo, double hi,
                                        std::size_t points = 64) {
  common::Series s;
  s.name = name;
  s.xs = common::lin_space(lo, hi, points);
  s.ys = stats.cdf_curve(s.xs);
  return s;
}

// Snapshot / fast-forward flags for the world benches (DESIGN.md §12):
//   --snapshot-at T      pause the canonical single run at simulated time T
//                        seconds, save the world, then run on to the end
//   --snapshot-out FILE  where --snapshot-at writes the snapshot
//   --restore FILE       skip the warm-up entirely: restore FILE (the
//                        scenario comes from the snapshot itself) and run
//                        the remaining timeline to completion
struct SnapshotCli {
  double snapshot_at = -1.0;
  std::string snapshot_out;
  std::string restore_path;

  bool saving() const { return snapshot_at >= 0 || !snapshot_out.empty(); }
  bool restoring() const { return !restore_path.empty(); }
};

inline void add_snapshot_flags(common::FlagSet& flags, SnapshotCli& cli) {
  flags.add("--snapshot-at", &cli.snapshot_at,
            "save the single-run world at this simulated time (seconds)");
  flags.add("--snapshot-out", &cli.snapshot_out,
            "file the --snapshot-at snapshot is written to");
  flags.add("--restore", &cli.restore_path,
            "restore a world snapshot file and run it to completion");
}

// Returns a non-empty reason when the snapshot flag combination is invalid.
inline std::string snapshot_cli_error(const SnapshotCli& cli) {
  if (cli.saving() && (cli.snapshot_at < 0 || cli.snapshot_out.empty()))
    return "--snapshot-at and --snapshot-out must be given together";
  if (cli.saving() && cli.restoring())
    return "--restore cannot be combined with --snapshot-at/--snapshot-out";
  return "";
}

// The canonical single run, honoring the snapshot flags: plain run_world
// when neither side is active, save-at-T-then-continue for --snapshot-at,
// restore-then-finish for --restore. The returned report is byte-identical
// to the uninterrupted run in all three modes (test_determinism pins this).
// `workers` > 1 drains each mode's remaining timeline through the parallel
// window runtime (World::run_parallel) — still digest-identical, which is
// exactly the §13 invariant the determinism matrix pins.
inline world::WorldReport run_world_snapshot_aware(
    const world::ScenarioSpec& spec, const SnapshotCli& cli,
    std::size_t workers = 1) {
  constexpr double kForever = std::numeric_limits<double>::infinity();
  std::optional<task::Pool> pool;
  if (workers != 1) pool.emplace(workers);
  const auto drain = [&](world::World& w) {
    if (pool) return w.run_parallel(*pool);
    w.run_until(kForever);
    return w.finish();
  };
  if (cli.restoring()) {
    world::World w(spec);
    w.restore_file(cli.restore_path);
    std::printf("[snap] restored %s; resuming to completion\n",
                cli.restore_path.c_str());
    return drain(w);
  }
  if (cli.saving()) {
    world::World w(spec);
    w.run_until(cli.snapshot_at);
    w.save_file(cli.snapshot_out);
    std::printf("[snap] world saved to %s at t=%.0f s; continuing\n",
                cli.snapshot_out.c_str(), cli.snapshot_at);
    return drain(w);
  }
  if (pool) {
    world::World w(spec);
    return w.run_parallel(*pool);
  }
  return world::run_world(spec);
}

// The six-month replays shared by the characterization benches, resolved
// from the world scenario presets (Seren 1/8 job scale, Kalos full) so the
// benches, tests and acme::world all replay the same assemblies.
inline const core::SixMonthReplay& seren_replay() {
  static const core::SixMonthReplay replay =
      core::run_scenario_replay(world::seren_scenario());
  return replay;
}

inline const core::SixMonthReplay& kalos_replay() {
  static const core::SixMonthReplay replay =
      core::run_scenario_replay(world::kalos_scenario());
  return replay;
}

// The serve-only Seren preset shared by the serve benches and
// `bench_world_endtoend --scenario serve-seren`, and the serve::ServeConfig
// it resolves to (one mapping, world::serve_config, for benches, tests and
// the world driver alike).
inline const world::ScenarioSpec& serve_seren_scenario() {
  static const world::ScenarioSpec spec = world::serve_seren_scenario();
  return spec;
}

inline serve::ServeConfig serve_seren_config() {
  return world::serve_config(serve_seren_scenario());
}

}  // namespace acme::bench
