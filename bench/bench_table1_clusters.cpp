// Table 1: per-node specification and cluster scale for Seren and Kalos.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_table1_clusters");
  bench::header("Table 1", "Per-node specification and cluster scale");
  common::Table table({"Cluster", "#CPUs", "#GPUs", "Mem(GB)", "Network", "#Nodes",
                       "Total GPUs", "Scheduler"});
  for (const auto& spec : {cluster::seren_spec(), cluster::kalos_spec()}) {
    char network[32];
    std::snprintf(network, sizeof(network), "%dx%.0fGb/s",
                  spec.node.compute_nics + spec.node.storage_nics,
                  spec.node.nic_gbps);
    table.add_row({spec.name, std::to_string(spec.node.cpus),
                   std::to_string(spec.node.gpus),
                   common::Table::integer(spec.node.host_memory_gb), network,
                   std::to_string(spec.node_count),
                   std::to_string(spec.total_gpus()),
                   spec.scheduler == cluster::SchedulerKind::kSlurm ? "Slurm"
                                                                    : "Kubernetes"});
  }
  std::printf("%s", table.render().c_str());
  bench::recap("Seren GPUs", "2,288", std::to_string(cluster::seren_spec().total_gpus()));
  bench::recap("Kalos GPUs", "2,416", std::to_string(cluster::kalos_spec().total_gpus()));
  bench::recap("Acme total GPUs", "4,704",
               std::to_string(cluster::seren_spec().total_gpus() +
                              cluster::kalos_spec().total_gpus()));
  return bench::finish(obs_cli);
}
