// §6.1-2/3: the failure diagnosis pipeline — log compression factor,
// diagnosis accuracy (rules vs retrieval vs continuous learning), and the
// end-to-end manual-intervention reduction of the fault-tolerant runner.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_sec61_diagnosis");
  bench::header("Sec 6.1", "Failure diagnosis and automatic recovery");

  // 1. Log compression (LogAgent + Filter Rules).
  failure::LogSynthesizer synth({.steps = 2000});
  common::Rng rng(61);
  diagnosis::FilterRules rules;
  diagnosis::LogAgent log_agent;
  log_agent.update_rules(synth.healthy_run(rng).lines, rules);
  std::size_t raw = 0, compressed = 0;
  for (int i = 0; i < 20; ++i) {
    const auto log = synth.healthy_run(rng);
    raw += log.lines.size();
    compressed += rules.compress(log.lines).size();
  }
  std::printf("log compression: %zu filter rules, %zu -> %zu lines (%.0fx)\n",
              rules.size(), raw, compressed,
              static_cast<double>(raw) / compressed);

  // 2. Diagnosis accuracy across modes.
  std::vector<const failure::FailureSpec*> specs;
  for (const auto& s : failure::failure_table()) specs.push_back(&s);
  failure::FailureInjector injector(6);
  failure::LogSynthesizer fail_synth;

  auto accuracy = [&](diagnosis::FailureAgent& agent, bool learn, int n) {
    int correct = 0;
    common::Rng r = injector.make_rng(learn ? "learn" : "static");
    for (int i = 0; i < n; ++i) {
      const auto event = injector.sample(r);
      const auto log = fail_synth.failed_run(*event.spec, r);
      const auto compressed_log = rules.compress(log.lines);
      if (agent.diagnose(compressed_log).reason == event.spec->reason) ++correct;
      if (learn) agent.learn(compressed_log, event.spec->reason);
    }
    return static_cast<double>(correct) / n;
  };

  diagnosis::FailureAgent seeded;
  seeded.seed_rules(specs);
  diagnosis::FailureAgent learner;  // starts from nothing, learns online

  common::Table table({"Diagnosis mode", "Accuracy"});
  table.add_row({"seeded rule KB + retrieval", common::Table::pct(accuracy(seeded, false, 400))});
  const double early = accuracy(learner, true, 100);
  const double late = accuracy(learner, true, 300);
  table.add_row({"continuous learning: first 100 incidents", common::Table::pct(early)});
  table.add_row({"continuous learning: after 100 incidents", common::Table::pct(late)});
  std::printf("%s", table.render().c_str());

  // 3. End-to-end: manual on-call vs the automatic pipeline.
  auto run = [&](bool auto_rec) {
    recovery::RunnerConfig cfg;
    cfg.model = parallel::llm_123b();
    cfg.gpus = 2048;
    cfg.auto_recovery = auto_rec;
    cfg.async_ckpt = true;
    cfg.graceful_cancel = true;
    cfg.horizon_seconds = 30 * common::kDay;
    cfg.seed = 614;
    return recovery::FaultTolerantRunner(cfg).run();
  };
  const auto manual = run(false);
  const auto automatic = run(true);
  common::Table rt({"Recovery", "failures", "manual interventions", "nodes cordoned",
                    "goodput", "final step"});
  rt.add_row({"manual on-call", std::to_string(manual.failures),
              std::to_string(manual.manual_interventions),
              std::to_string(manual.nodes_cordoned),
              common::Table::pct(manual.goodput()),
              std::to_string(manual.final_step)});
  rt.add_row({"automatic (§6.1)", std::to_string(automatic.failures),
              std::to_string(automatic.manual_interventions),
              std::to_string(automatic.nodes_cordoned),
              common::Table::pct(automatic.goodput()),
              std::to_string(automatic.final_step)});
  std::printf("%s", rt.render().c_str());

  const double failure_manual =
      manual.manual_interventions > 0
          ? 1.0 - static_cast<double>(automatic.manual_interventions) /
                      manual.manual_interventions
          : 0.0;
  bench::recap("manual intervention reduction", "~90%",
               common::Table::pct(failure_manual));
  bench::recap("diagnosis accuracy (seeded)", "high", "see table");
  return bench::finish(obs_cli);
}
