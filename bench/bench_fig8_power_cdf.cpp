// Fig 8: CDF of (a) A100 GPU power and (b) server power in Seren.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig8_power_cdf");
  bench::header("Fig 8", "Power consumption CDFs");

  common::Rng rng(8);
  const auto seren_cfg =
      core::fleet_config_from(core::seren_setup(), bench::seren_replay());
  const auto kalos_cfg =
      core::fleet_config_from(core::kalos_setup(), bench::kalos_replay());
  const auto seren = telemetry::FleetSampler(seren_cfg).sample(40000, rng);
  const auto kalos = telemetry::FleetSampler(kalos_cfg).sample(40000, rng);

  std::printf("(a) GPU power\n%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("Seren", seren.gpu_power_w, 0, 620),
                   bench::cdf_series_linear("Kalos", kalos.gpu_power_w, 0, 620)},
                  72, 16, false, "GPU power (W)", "CDF")
                  .c_str());

  // Server power: GPU servers vs the CPU-only service nodes.
  cluster::ServerPowerModel server_model(cluster::seren_spec().node);
  common::SampleStats cpu_servers;
  for (int i = 0; i < 5000; ++i)
    cpu_servers.add(server_model.cpu_server_w(rng.uniform(0.05, 0.30)));
  std::printf("(b) server power (Seren)\n%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("GPU servers", seren.server_power_w, 0,
                                            6500),
                   bench::cdf_series_linear("CPU servers", cpu_servers, 0, 6500)},
                  72, 16, false, "server power (W)", "CDF")
                  .c_str());

  bench::recap("idle GPUs at ~60 W", "~30% of fleet",
               common::Table::pct(seren.gpu_power_w.cdf(80.0)) + " below 80 W");
  bench::recap("Seren GPUs above 400 W TDP", "22.1%",
               common::Table::pct(1.0 - seren.gpu_power_w.cdf(400.0)));
  bench::recap("Kalos GPUs above 400 W TDP", "12.5%",
               common::Table::pct(1.0 - kalos.gpu_power_w.cdf(400.0)));
  bench::recap("peak GPU power", "~600 W",
               common::Table::num(seren.gpu_power_w.max(), 0) + " W");
  bench::recap("GPU server / CPU server power", "~5x",
               common::Table::num(
                   seren.server_power_w.mean() / cpu_servers.mean(), 1) +
                   "x");
  return bench::finish(obs_cli);
}
