// Fig 2: (a) CDF of GPU job duration and (b) CDF of GPU utilization across
// datacenters (Seren, Kalos vs Philly, Helios, PAI).
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig2_duration_util");
  bench::header("Fig 2(a)", "CDF of GPU job duration across datacenters");

  const auto seren_durations = trace::durations(bench::seren_replay().replay.jobs);
  const auto kalos_durations = trace::durations(bench::kalos_replay().replay.jobs);

  common::Rng rng(2);
  auto sample_profile = [&](const trace::DatacenterProfile& p) {
    common::SampleStats s;
    for (int i = 0; i < 60000; ++i) s.add(p.sample_duration(rng));
    return s;
  };
  const auto philly = sample_profile(trace::philly_profile());
  const auto helios = sample_profile(trace::helios_profile());
  const auto pai = sample_profile(trace::pai_profile());

  std::printf("%s\n",
              common::plot_lines(
                  {bench::cdf_series("Seren", seren_durations, 10, 1e6),
                   bench::cdf_series("Kalos", kalos_durations, 10, 1e6),
                   bench::cdf_series("Philly", philly, 10, 1e6),
                   bench::cdf_series("Helios", helios, 10, 1e6),
                   bench::cdf_series("PAI", pai, 10, 1e6)},
                  72, 18, true, "job duration (s)", "CDF")
                  .c_str());

  common::Table table({"Datacenter", "Median duration", "Mean duration"});
  auto row = [&](const char* name, const common::SampleStats& s) {
    table.add_row({name, common::format_duration(s.median()),
                   common::format_duration(s.mean())});
  };
  row("Seren", seren_durations);
  row("Kalos", kalos_durations);
  row("Philly", philly);
  row("Helios", helios);
  row("PAI", pai);
  std::printf("%s", table.render().c_str());

  bench::recap("Seren/Kalos median duration", "~2 min",
               common::format_duration(seren_durations.median()) + " / " +
                   common::format_duration(kalos_durations.median()));
  // Job-count weighted: Seren's 664K jobs dominate the 20K Kalos jobs.
  const double acme_avg =
      (seren_durations.mean() * 664.0 + kalos_durations.mean() * 20.0) / 684.0;
  bench::recap("Philly avg / Acme avg", "12.8x",
               common::Table::num(philly.mean() / acme_avg, 1) + "x");
  bench::recap("others' median / Acme median", "1.7~7.2x",
               common::Table::num(pai.median() / seren_durations.median(), 1) + "~" +
                   common::Table::num(philly.median() / seren_durations.median(), 1) +
                   "x");

  bench::header("Fig 2(b)", "CDF of GPU utilization across datacenters");
  auto seren_cfg = core::fleet_config_from(core::seren_setup(), bench::seren_replay());
  auto kalos_cfg = core::fleet_config_from(core::kalos_setup(), bench::kalos_replay());
  common::Rng urng(3);
  const auto seren_m = telemetry::FleetSampler(seren_cfg).sample(30000, urng);
  const auto kalos_m = telemetry::FleetSampler(kalos_cfg).sample(30000, urng);
  common::SampleStats philly_util, pai_util;
  for (int i = 0; i < 30000; ++i) {
    philly_util.add(trace::philly_profile().sample_util(urng));
    pai_util.add(trace::pai_profile().sample_util(urng));
  }
  std::printf("%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("Seren", seren_m.gpu_util, 0, 100),
                   bench::cdf_series_linear("Kalos", kalos_m.gpu_util, 0, 100),
                   bench::cdf_series_linear("Philly", philly_util, 0, 100),
                   bench::cdf_series_linear("PAI", pai_util, 0, 100)},
                  72, 18, false, "GPU utilization (%)", "CDF")
                  .c_str());
  bench::recap("median GPU util Seren/Kalos", "97% / 99%",
               common::Table::num(seren_m.gpu_util.median(), 0) + "% / " +
                   common::Table::num(kalos_m.gpu_util.median(), 0) + "%");
  bench::recap("median GPU util Philly/PAI", "48% / 4%",
               common::Table::num(philly_util.median(), 0) + "% / " +
                   common::Table::num(pai_util.median(), 0) + "%");
  return bench::finish(obs_cli);
}
