// Fig 6: CDF of job duration and queuing delay per workload type, from the
// six-month replay through the quota-reservation scheduler.
//
// Monte Carlo conversion: besides the canonical single-seed tables/plots, the
// bench replays the Seren trace across N independent replicas (one resampled
// trace + private scheduler each) on a worker pool and reports t-based 95%
// confidence intervals on the headline queuing-delay metrics.
// Flags: --replicas N --threads K --seed S --json out.json
#include "bench_util.h"

using namespace acme;

namespace {

void print_cluster(const char* name, const trace::Trace& jobs) {
  std::printf("\n-- %s --\n", name);
  common::Table table({"Workload", "dur median", "dur p95", "delay median",
                       "delay mean", "delay p95"});
  std::vector<common::Series> delay_series;
  for (trace::WorkloadType type : trace::kAllWorkloadTypes) {
    const auto dur = trace::durations_of(jobs, type);
    const auto delay = trace::queue_delays_of(jobs, type);
    if (dur.empty()) continue;
    table.add_row({trace::to_string(type), common::format_duration(dur.median()),
                   common::format_duration(dur.quantile(0.95)),
                   common::format_duration(delay.median()),
                   common::format_duration(delay.mean()),
                   common::format_duration(delay.quantile(0.95))});
    if (type == trace::WorkloadType::kPretrain ||
        type == trace::WorkloadType::kEvaluation ||
        type == trace::WorkloadType::kDebug) {
      auto shifted = delay;  // log-x CDF needs positive values
      common::SampleStats positive;
      for (double v : shifted.values()) positive.add(v + 1.0);
      delay_series.push_back(
          bench::cdf_series(trace::to_string(type), positive, 1, 1e6));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("queuing delay CDF (log x, +1 s offset):\n%s\n",
              common::plot_lines(delay_series, 72, 14, true, "delay (s)", "CDF")
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  mc::ReplicationOptions defaults;
  defaults.replicas = 8;
  defaults.stream_label = "fig6-seren";
  const bench::BenchCli obs_cli =
      bench::parse_cli(argc, argv, "bench_fig6_queuing_delay", defaults);
  const mc::McCli& cli = obs_cli.mc;
  bench::header("Fig 6", "Job duration and queuing delay per workload type");
  print_cluster("Seren", bench::seren_replay().replay.jobs);
  print_cluster("Kalos", bench::kalos_replay().replay.jobs);

  for (const char* name : {"Seren", "Kalos"}) {
    const auto& jobs = std::string(name) == "Seren"
                           ? bench::seren_replay().replay.jobs
                           : bench::kalos_replay().replay.jobs;
    const auto eval = trace::queue_delays_of(jobs, trace::WorkloadType::kEvaluation);
    const auto pre = trace::queue_delays_of(jobs, trace::WorkloadType::kPretrain);
    bench::recap(std::string(name) + ": eval delay vs pretrain delay (median)",
                 "eval longest, pretrain ~0",
                 common::format_duration(eval.median()) + " vs " +
                     common::format_duration(pre.median()));
  }

  // Multi-seed replication of the Seren replay (1/8 job scale per replica).
  const auto setup = core::seren_setup();
  const auto run = core::run_six_month_replay_mc(setup, cli.options, 8.0);

  mc::MetricAggregator eval_median_h, pretrain_median_s, over_day_pct;
  mc::fold_metric(run, [](const core::SixMonthReplay& r) {
    return trace::queue_delays_of(r.replay.jobs, trace::WorkloadType::kEvaluation)
               .median() / common::kHour;
  }, eval_median_h);
  mc::fold_metric(run, [](const core::SixMonthReplay& r) {
    return trace::queue_delays_of(r.replay.jobs, trace::WorkloadType::kPretrain)
        .median();
  }, pretrain_median_s);
  mc::fold_metric(run, [](const core::SixMonthReplay& r) {
    return 100.0 * (1.0 - trace::durations(r.replay.jobs).cdf(common::kDay));
  }, over_day_pct);

  mc::BenchReport report("fig6_queuing_delay");
  report.set_timing(run.timing, cli.options.replicas);
  report.add_metric("seren_eval_delay_median", eval_median_h, "h");
  report.add_metric("seren_pretrain_delay_median", pretrain_median_s, "s");
  report.add_metric("seren_jobs_over_1day_pct", over_day_pct, "%");

  bench::recap("Seren eval delay median (multi-seed)", "longest of all types",
               common::Table::num(eval_median_h.mean(), 1) + " h",
               mc::format_with_ci(eval_median_h.mean(), eval_median_h.ci95(), "h", 1));
  bench::recap("Seren pretrain delay median (multi-seed)", "~0",
               common::Table::num(pretrain_median_s.mean(), 1) + " s",
               mc::format_with_ci(pretrain_median_s.mean(),
                                  pretrain_median_s.ci95(), "s", 1));
  bench::recap("jobs running > 1 day (multi-seed)", "<5%",
               common::Table::num(over_day_pct.mean(), 2) + "%",
               mc::format_with_ci(over_day_pct.mean(), over_day_pct.ci95(), "%", 2));
  bench::mc_footer(report, cli);
  return bench::finish(obs_cli);
}
