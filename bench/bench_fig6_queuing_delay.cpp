// Fig 6: CDF of job duration and queuing delay per workload type, from the
// six-month replay through the quota-reservation scheduler.
#include "bench_util.h"

using namespace acme;

namespace {

void print_cluster(const char* name, const trace::Trace& jobs) {
  std::printf("\n-- %s --\n", name);
  common::Table table({"Workload", "dur median", "dur p95", "delay median",
                       "delay mean", "delay p95"});
  std::vector<common::Series> delay_series;
  for (trace::WorkloadType type : trace::kAllWorkloadTypes) {
    const auto dur = trace::durations_of(jobs, type);
    const auto delay = trace::queue_delays_of(jobs, type);
    if (dur.empty()) continue;
    table.add_row({trace::to_string(type), common::format_duration(dur.median()),
                   common::format_duration(dur.quantile(0.95)),
                   common::format_duration(delay.median()),
                   common::format_duration(delay.mean()),
                   common::format_duration(delay.quantile(0.95))});
    if (type == trace::WorkloadType::kPretrain ||
        type == trace::WorkloadType::kEvaluation ||
        type == trace::WorkloadType::kDebug) {
      auto shifted = delay;  // log-x CDF needs positive values
      common::SampleStats positive;
      for (double v : shifted.values()) positive.add(v + 1.0);
      delay_series.push_back(
          bench::cdf_series(trace::to_string(type), positive, 1, 1e6));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("queuing delay CDF (log x, +1 s offset):\n%s\n",
              common::plot_lines(delay_series, 72, 14, true, "delay (s)", "CDF")
                  .c_str());
}

}  // namespace

int main() {
  bench::header("Fig 6", "Job duration and queuing delay per workload type");
  print_cluster("Seren", bench::seren_replay().replay.jobs);
  print_cluster("Kalos", bench::kalos_replay().replay.jobs);

  for (const char* name : {"Seren", "Kalos"}) {
    const auto& jobs = std::string(name) == "Seren"
                           ? bench::seren_replay().replay.jobs
                           : bench::kalos_replay().replay.jobs;
    const auto eval = trace::queue_delays_of(jobs, trace::WorkloadType::kEvaluation);
    const auto pre = trace::queue_delays_of(jobs, trace::WorkloadType::kPretrain);
    bench::recap(std::string(name) + ": eval delay vs pretrain delay (median)",
                 "eval longest, pretrain ~0",
                 common::format_duration(eval.median()) + " vs " +
                     common::format_duration(pre.median()));
  }
  const auto& seren = bench::seren_replay().replay.jobs;
  const auto dur = trace::durations(seren);
  bench::recap("jobs running > 1 day", "<5%",
               common::Table::pct(1.0 - dur.cdf(common::kDay)));
  return 0;
}
