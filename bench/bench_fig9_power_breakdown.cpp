// Fig 9: average power split across hardware modules in Seren GPU servers.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig9_power_breakdown");
  bench::header("Fig 9", "Average power distribution of GPU-server modules");

  // Average over the fleet's operating points: GPUs at their fleet-mean
  // power, CPUs at their fleet-mean utilization.
  common::Rng rng(9);
  const auto cfg = core::fleet_config_from(core::seren_setup(), bench::seren_replay());
  const auto metrics = telemetry::FleetSampler(cfg).sample(20000, rng);
  cluster::ServerPowerModel model(cluster::seren_spec().node);
  const auto split =
      model.gpu_server(8.0 * metrics.gpu_power_w.mean(), metrics.cpu_util.mean());

  common::Table table({"Module", "Power (W)", "Share"});
  const double total = split.total();
  auto row = [&](const char* name, double watts) {
    table.add_row({name, common::Table::num(watts, 0),
                   common::Table::pct(watts / total)});
  };
  row("GPUs", split.gpu_w);
  row("CPUs", split.cpu_w);
  row("PSU conversion loss", split.psu_loss_w);
  row("DRAM", split.memory_w);
  row("Fans", split.fan_w);
  row("NIC/storage/other", split.nic_storage_other_w);
  std::printf("%s", table.render().c_str());
  std::printf("%s", common::plot_bars({{"GPUs", split.gpu_w},
                                       {"CPUs", split.cpu_w},
                                       {"PSU loss", split.psu_loss_w},
                                       {"DRAM", split.memory_w},
                                       {"Fans", split.fan_w},
                                       {"Other", split.nic_storage_other_w}},
                                      44, "W")
                        .c_str());

  bench::recap("GPU share of server power", "~2/3",
               common::Table::pct(split.gpu_w / total));
  bench::recap("CPU share", "11.2%", common::Table::pct(split.cpu_w / total));
  bench::recap("PSU loss share", "9.6%",
               common::Table::pct(split.psu_loss_w / total));
  return bench::finish(obs_cli);
}
