// Extension bench (paper §7 "Continuous System Enhancement": long sequence
// pretraining): activation memory and step time of the 123B model as the
// context grows, with and without sequence/context parallelism.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_longseq");
  bench::header("Extension", "Long-sequence pretraining: 123B activation scaling");

  common::Table table({"Sequence", "strategy", "static/GPU", "activations/GPU",
                       "fits 80 GB?", "step time"});
  for (int seq : {2048, 8192, 32768, 131072}) {
    parallel::TransformerConfig model = parallel::llm_123b();
    model.seq_len = seq;
    parallel::PretrainExecutionModel exec(model);

    // Plain hierarchical ZeRO...
    parallel::HierZeroConfig plain;
    // ...and with context parallelism sized to the sequence.
    parallel::HierZeroConfig cp = plain;
    cp.context_parallel = std::max(1, seq / 8192);

    for (const auto& [name, cfg] :
         {std::pair<const char*, parallel::HierZeroConfig>{"hier. ZeRO", plain},
          std::pair<const char*, parallel::HierZeroConfig>{
              "hier. ZeRO + context parallel", cp}}) {
      if (name == std::string("hier. ZeRO + context parallel") &&
          cfg.context_parallel == 1)
        continue;  // identical to plain at short contexts
      const double stat = exec.static_bytes_hier_zero(cfg);
      const double act = exec.activation_bytes_hier_zero(cfg);
      const auto tl = exec.step_hier_zero(cfg);
      char seqbuf[16];
      std::snprintf(seqbuf, sizeof(seqbuf), "%dk", seq / 1024);
      table.add_row({seqbuf,
                     cfg.context_parallel > 1
                         ? std::string(name) + " (cp=" +
                               std::to_string(cfg.context_parallel) + ")"
                         : name,
                     common::format_bytes(stat), common::format_bytes(act),
                     stat + act <= 80e9 ? "yes" : "NO",
                     common::Table::num(tl.step_time(), 1) + " s"});
    }
  }
  std::printf("%s", table.render().c_str());

  // Sequence parallelism inside the 3D strategy.
  parallel::PretrainExecutionModel exec(parallel::llm_123b());
  parallel::ThreeDConfig no_sp;
  parallel::ThreeDConfig sp = no_sp;
  sp.sequence_parallel = true;
  bench::recap("sequence parallelism saving (3D, 2k ctx)", "partitions residual acts",
               common::format_bytes(exec.activation_bytes_3d(no_sp)) + " -> " +
                   common::format_bytes(exec.activation_bytes_3d(sp)));
  bench::recap("long-context without cp", "activations blow past HBM",
               "recompute keeps inputs only, yet 128k ctx needs context parallelism");
  return bench::finish(obs_cli);
}
