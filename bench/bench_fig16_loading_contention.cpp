// Fig 16 (left): stress test of model loading from remote storage — average
// loading speed vs number of concurrent single-GPU evaluation trials.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig16_loading_contention");
  bench::header("Fig 16 (left)", "Model loading speed vs concurrent trials (Seren)");

  const double model_bytes = 2.0 * parallel::llm_7b().params();  // fp16 7B
  auto per_trial_speed = [&](int trials) {
    sim::Engine engine;
    storage::StorageNetwork net(engine, storage::seren_storage_config());
    std::vector<double> done(static_cast<std::size_t>(trials), 0);
    for (int i = 0; i < trials; ++i) {
      const int node = i / 8;  // 8 single-GPU trials per node
      net.start_flow(node, model_bytes,
                     [&, i] { done[static_cast<std::size_t>(i)] = engine.now(); });
    }
    engine.run();
    double speed = 0;
    for (double d : done) speed += model_bytes / d;
    return speed / trials;
  };

  common::Table table({"Concurrent trials (GPUs)", "Avg load speed (GB/s)",
                       "Load time for 7B (s)"});
  common::Series series{"load speed", {}, {}};
  for (int trials : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const double speed = per_trial_speed(trials);
    table.add_row({std::to_string(trials), common::Table::num(speed / 1e9, 2),
                   common::Table::num(model_bytes / speed, 1)});
    series.xs.push_back(trials);
    series.ys.push_back(speed / 1e9);
  }
  std::printf("%s", table.render().c_str());
  std::printf("%s\n", common::plot_lines({series}, 72, 14, true,
                                         "concurrent single-GPU trials",
                                         "GB/s per trial")
                          .c_str());

  const double v1 = per_trial_speed(1), v8 = per_trial_speed(8),
               v256 = per_trial_speed(256);
  bench::recap("decline from 1 to 8 trials on one node", "huge (25 Gb/s NIC)",
               common::Table::num(v1 / v8, 1) + "x slower");
  bench::recap("speed from 8 to 256 trials", "stabilizes",
               common::Table::num(v8 / 1e9, 2) + " -> " +
                   common::Table::num(v256 / 1e9, 2) + " GB/s");
  std::printf(
      "  note: this bottleneck motivates §6.2-1 — one precursor load per node\n"
      "  into shared memory, then PCIe-speed reads for every trial.\n");
  return bench::finish(obs_cli);
}
