// Fig 10: GPU SM utilization of pretraining the 123B model over 2048 GPUs
// under InternEvo V1 (3D parallelism) vs V2 (hierarchical ZeRO).
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig10_pretrain_sm");
  bench::header("Fig 10", "SM utilization: 123B over 2048 GPUs, V1 vs V2");

  parallel::PretrainExecutionModel model(parallel::llm_123b());
  parallel::ThreeDConfig v1_cfg;   // tp=8, pp=4 as profiled in the paper
  parallel::HierZeroConfig v2_cfg; // 64-GPU shard groups, recompute on
  const auto v1 = model.step_3d(v1_cfg);
  const auto v2 = model.step_hier_zero(v2_cfg);

  common::Rng rng(10);
  const double horizon = 2.0 * std::max(v1.step_time(), v2.step_time());
  const auto v1_samples = v1.sample(0.001, horizon, rng);  // 1 ms DCGM cadence
  const auto v2_samples = v2.sample(0.001, horizon, rng);
  std::printf("(a) InternEvo V1 (3D parallelism), 1 ms samples over %.1f s:\n  |%s|\n",
              horizon, common::sparkline(v1_samples, 100).c_str());
  std::printf("(b) InternEvo V2 (hierarchical ZeRO):\n  |%s|\n\n",
              common::sparkline(v2_samples, 100).c_str());

  common::Table table({"Strategy", "step time", "mean SM", "peak SM phase",
                       "idle fraction"});
  auto peak = [](const parallel::StepTimeline& tl) {
    double p = 0;
    for (const auto& phase : tl.phases) p = std::max(p, phase.sm_level);
    return p;
  };
  table.add_row({"V1 (3D: tp=8, pp=4)", common::Table::num(v1.step_time(), 2) + " s",
                 common::Table::pct(v1.mean_sm()), common::Table::pct(peak(v1)),
                 common::Table::pct(v1.idle_fraction())});
  table.add_row({"V2 (hier. ZeRO/64)", common::Table::num(v2.step_time(), 2) + " s",
                 common::Table::pct(v2.mean_sm()), common::Table::pct(peak(v2)),
                 common::Table::pct(v2.idle_fraction())});
  std::printf("%s", table.render().c_str());

  std::printf("\nV1 phase structure:\n");
  for (const auto& p : v1.phases)
    std::printf("  %-18s %7.3f s  SM %.0f%%\n", p.kind.c_str(), p.duration,
                p.sm_level * 100);

  bench::recap("V2 end-to-end acceleration over V1", "~16%",
               common::Table::pct(v1.step_time() / v2.step_time() - 1.0));
  bench::recap("V2 peak SM and idle periods vs V1", "higher peak, fewer idles",
               common::Table::pct(peak(v2)) + " peak, " +
                   common::Table::pct(v2.idle_fraction()) + " idle");
  return bench::finish(obs_cli);
}
