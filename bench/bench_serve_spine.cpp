// Serve hot-path throughput: raw sustained simulated requests/second through
// the continuous-batching spine, with a TU-local operator-new hook proving
// the steady state allocation-free.
//
// The measured region is one engine drain of a pre-warmed fleet: a warm-up
// run at the same configuration grows every pool (engine slots, the sorted
// run, request pool, rings) to steady-state capacity, engine.reset() keeps
// the capacity, and the second run is bracketed by the allocation counter.
// Any heap allocation between the first arrival and the drain is a
// regression (exit 1), matching BM_SixMonthReplay's run_allocs=0 contract.
//
// The default traffic is deliberately flat (mild diurnal swing, no MMPP
// bursts): the bench measures the spine — event dispatch, admission, epoch
// settling, quantile sketches — not the trigonometry of an interesting
// arrival process. bench_serve_slo covers the shaped-traffic behaviour.
//
// Flags: --replicas N --rps R --seconds SIMULATED --seed S --json out.json
//        --workers W
// --workers > 1 routes the measured drain through the parallel window
// runtime (sim::WindowRunner on an acme::task pool, DESIGN.md §13). A serve
// fleet is one partition, so this buys coverage, not speedup — the point is
// that the allocation-freedom contract and the report hold verbatim when the
// spine executes on pool workers.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <optional>

#include "bench_util.h"

using namespace acme;

// Allocation-counting hook (same pattern as bench_micro_engines): every
// global operator new in this binary bumps a counter.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

int main(int argc, char** argv) {
  std::uint64_t replicas = 64;
  double rps = 2000.0;  // ~1.4x fleet capacity: admission, settle and
                        // rejection paths all stay hot
  double seconds = 600.0;
  std::uint64_t seed = 42;
  std::uint64_t workers = 1;
  std::string json_path;

  common::FlagSet flags("bench_serve_spine");
  bench::BenchCli obs_cli;
  flags.add("--trace-out", &obs_cli.trace_path,
            "write a Chrome trace-event JSON of this run (Perfetto-loadable)");
  flags.add("--metrics-out", &obs_cli.metrics_path,
            "write the self-observability metrics as Prometheus text");
  flags.add("--replicas", &replicas, "serving replicas in the fleet");
  flags.add("--rps", &rps, "long-run offered requests/second");
  flags.add("--seconds", &seconds, "simulated arrival horizon");
  flags.add("--seed", &seed, "arrival-process seed");
  flags.add("--workers", &workers,
            "window-drain pool width (1 = classic serial engine drain)");
  flags.add("--json", &json_path,
            "write a BENCH-format results JSON for tools/bench_compare.py");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_serve_spine: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  if (!obs_cli.trace_path.empty() || !obs_cli.metrics_path.empty())
    obs::set_enabled(true);

  serve::ServeConfig cfg = bench::serve_seren_config();
  cfg.replicas = static_cast<int>(replicas);
  cfg.horizon_seconds = seconds;
  cfg.traffic.mean_rps = rps;
  cfg.traffic.diurnal_amplitude = 0.25;
  cfg.traffic.diurnal_period_seconds = 3600.0;
  cfg.traffic.burst_multiplier = 1.0;  // flat: measure the spine, not sin()
  cfg.traffic.burst_fraction = 0.0;

  bench::header("ServeSpine", "Continuous-batching hot path throughput");
  std::printf("replicas %d x %d GPUs, %.0f rps offered, %.0f s simulated\n",
              cfg.replicas, cfg.hw.gpus, rps, seconds);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  sim::Engine engine;
  std::optional<task::Pool> pool;
  if (workers > 1) pool.emplace(static_cast<std::size_t>(workers));
  std::uint64_t warm_events = 0;
  {
    // Warm-up at full length: grows the engine's slot vector, sorted run and
    // heap to their steady-state high-water marks; reset() keeps capacity.
    // With --workers the warm-up also goes through a window runner so the
    // pool's task rings are grown before the measured drain.
    serve::ServeFleet warm(engine, cfg, seed);
    warm.start();
    if (pool) {
      sim::WindowRunner warm_runner;
      warm_runner.add_partition(engine, 0);
      warm_events = warm_runner.run(&*pool, kInf).events;
    } else {
      warm_events = engine.run();
    }
    engine.reset();
  }

  serve::ServeFleet fleet(engine, cfg, seed);
  fleet.start();
  sim::WindowRunner runner;
  if (pool) {
    runner.add_partition(engine, 0);
    runner.reserve(static_cast<std::size_t>(warm_events) + 1024);
    pool->reserve(64);
  }
  const std::uint64_t allocs_before = heap_allocs();
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t events =
      pool ? static_cast<std::size_t>(runner.run(&*pool, kInf).events)
           : engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t run_allocs = heap_allocs() - allocs_before;
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  const serve::FleetReport report = fleet.report();
  const double req_per_s =
      wall > 0 ? static_cast<double>(report.offered) / wall : 0;

  common::Table table({"metric", "value"});
  table.add_row({"requests offered", std::to_string(report.offered)});
  table.add_row({"  completed", std::to_string(report.completed)});
  table.add_row({"  rejected", std::to_string(report.rejected)});
  table.add_row({"batching epochs", std::to_string(report.epochs)});
  table.add_row({"decode steps", std::to_string(report.decode_steps)});
  table.add_row({"engine events", std::to_string(events)});
  table.add_row({"drain workers", std::to_string(workers)});
  table.add_row({"wall seconds", common::Table::num(wall, 3)});
  table.add_row({"simulated requests/s", common::Table::num(req_per_s / 1e6, 2) + "M"});
  table.add_row({"events/s", common::Table::num(
                     wall > 0 ? events / wall / 1e6 : 0, 2) + "M"});
  table.add_row({"run allocations", std::to_string(run_allocs)});
  table.add_row({"mean batch occupancy",
                 common::Table::num(report.mean_batch_occupancy, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("  fleet: %s\n", report.summary().c_str());

  bench::recap("sustained simulated request rate", ">= 1M requests/s",
               common::Table::num(req_per_s / 1e6, 2) + "M requests/s");
  bench::recap("steady-state heap allocations", "0 (pooled hot path)",
               std::to_string(run_allocs));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"workers\": " << workers << ",\n  \"results\": {\n"
        << "    \"bench_serve_spine/requests\": { \"items_per_second\": "
        << static_cast<std::uint64_t>(req_per_s) << " }\n  }\n}\n";
    std::printf("[json] results written to %s\n", json_path.c_str());
  }

  // The allocation-freedom contract only holds with observability off (obs
  // sinks buffer trace events on the heap by design).
  if (run_allocs != 0 && !obs::enabled()) {
    std::fprintf(stderr,
                 "bench_serve_spine: %llu heap allocations on the request "
                 "hot path (expected 0)\n",
                 static_cast<unsigned long long>(run_allocs));
    return 1;
  }
  return bench::finish(obs_cli);
}
