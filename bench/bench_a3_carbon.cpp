// Appendix A.3: datacenter energy and carbon accounting for Seren.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_a3_carbon");
  bench::header("Appendix A.3", "Energy and carbon emissions (Seren, one month)");

  // Integrate fleet power over a month at the replayed occupancy.
  common::Rng rng(33);
  const auto cfg = core::fleet_config_from(core::seren_setup(), bench::seren_replay());
  const auto metrics = telemetry::FleetSampler(cfg).sample(20000, rng);
  const double mean_server_w = metrics.server_power_w.mean();
  const int nodes = cluster::seren_spec().node_count;
  const double hours = 31 * 24.0;
  const double it_energy_mwh = mean_server_w * nodes * hours / 1e6;

  const cluster::CarbonModel carbon;
  const double facility_mwh = carbon.facility_energy_mwh(it_energy_mwh);
  const double emissions = carbon.emissions_tco2e(it_energy_mwh);

  common::Table table({"Quantity", "Value"});
  table.add_row({"mean GPU-server power", common::Table::num(mean_server_w, 0) + " W"});
  table.add_row({"GPU servers", std::to_string(nodes)});
  table.add_row({"IT energy (May)", common::Table::num(it_energy_mwh, 0) + " MWh"});
  table.add_row({"PUE", common::Table::num(carbon.pue, 2)});
  table.add_row({"facility energy", common::Table::num(facility_mwh, 0) + " MWh"});
  table.add_row({"carbon-free energy share", common::Table::pct(carbon.carbon_free_fraction)});
  table.add_row({"emission rate", common::Table::num(carbon.tco2e_per_mwh, 3) + " tCO2e/MWh"});
  table.add_row({"effective emissions", common::Table::num(emissions, 1) + " tCO2e"});
  std::printf("%s", table.render().c_str());

  bench::recap("Seren monthly energy", "~673 MWh",
               common::Table::num(it_energy_mwh, 0) + " MWh");
  bench::recap("effective emissions", "321.7 tCO2e (for 673 MWh)",
               common::Table::num(emissions, 1) + " tCO2e");
  bench::recap("paper's rate check: 673 MWh x 0.478", "321.7 tCO2e",
               common::Table::num(carbon.emissions_tco2e(673.0), 1) + " tCO2e");
  return bench::finish(obs_cli);
}
