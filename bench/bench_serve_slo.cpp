// Load vs latency for the serving fleet: sweeps the offered request rate
// across multiples of the serve-seren preset and reports p99 TTFT / E2E and
// SLO-attainment goodput at each point — the serving analogue of a
// throughput-latency curve. Under light load the fleet is latency-bound (the
// per-layer all-reduce floor); past saturation the queues and the KV
// admission gate push TTFT out and goodput decouples from offered load.
//
// Flags: --seconds SIMULATED --seed S --replicas N
//        --trace-out t.json --metrics-out m.prom
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  std::uint64_t replicas = 16;
  double seconds = 3600.0;
  std::uint64_t seed = 42;

  common::FlagSet flags("bench_serve_slo");
  bench::BenchCli obs_cli;
  flags.add("--trace-out", &obs_cli.trace_path,
            "write a Chrome trace-event JSON of this run (Perfetto-loadable)");
  flags.add("--metrics-out", &obs_cli.metrics_path,
            "write the self-observability metrics as Prometheus text");
  flags.add("--replicas", &replicas, "serving replicas in the fleet");
  flags.add("--seconds", &seconds, "simulated arrival horizon per load point");
  flags.add("--seed", &seed, "arrival-process seed");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_serve_slo: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  if (!obs_cli.trace_path.empty() || !obs_cli.metrics_path.empty())
    obs::set_enabled(true);

  serve::ServeConfig base = bench::serve_seren_config();
  base.replicas = static_cast<int>(replicas);
  base.horizon_seconds = seconds;

  bench::header("ServeSLO", "Offered load vs tail latency and goodput");
  std::printf(
      "%d replicas x %d GPUs (%s), SLO: ttft <= %.1f s, tpot <= %.0f ms\n\n",
      base.replicas, base.hw.gpus, base.fabric.name.c_str(),
      base.slo_ttft_seconds, base.slo_tpot_seconds * 1e3);

  const std::vector<double> load_multipliers = {0.25, 0.5, 0.75, 1.0,
                                                1.25, 1.5,  2.0};
  common::Table table({"load", "offered rps", "goodput rps", "slo %",
                       "ttft p50 s", "ttft p99 s", "e2e p99 s", "batch",
                       "rejected"});
  double knee_load = 0;  // last load whose SLO attainment stayed >= 99%
  for (const double mult : load_multipliers) {
    serve::ServeConfig cfg = base;
    cfg.traffic.mean_rps = base.traffic.mean_rps * mult;
    sim::Engine engine;
    serve::ServeFleet fleet(engine, cfg, seed);
    fleet.start();
    engine.run();
    const serve::FleetReport r = fleet.report();
    if (r.slo_attainment() >= 0.99) knee_load = mult;
    table.add_row({common::Table::num(mult, 2) + "x",
                   common::Table::num(r.offered_rps(), 1),
                   common::Table::num(r.goodput_rps(), 1),
                   common::Table::pct(r.slo_attainment()),
                   common::Table::num(r.ttft_p50, 3),
                   common::Table::num(r.ttft_p99, 3),
                   common::Table::num(r.e2e_p99, 2),
                   common::Table::num(r.mean_batch_occupancy, 1),
                   std::to_string(r.rejected)});
  }
  std::printf("%s", table.render().c_str());

  bench::recap("latency under load",
               "continuous batching: tail inflates before throughput caps",
               "p99 TTFT grows with load while goodput tracks offered");
  bench::recap("SLO knee", "goodput decouples from offered load past saturation",
               common::Table::num(knee_load, 2) + "x load keeps >= 99% SLO");

  return bench::finish(obs_cli);
}
