// Parallel replay speedup: the sharded six-month replay drained by the
// work-stealing window runtime (DESIGN.md §13) against the serial drain of
// the identical composition, in one process on one machine.
//
// The workload is BM_SixMonthReplay's: the seren preset's synthesized trace
// at --scale, split round-robin into --shards pods (sched::shard_trace),
// each pod a full cluster replica with its own engine. Both columns drain
// through sim::WindowRunner — serial passes a null pool, parallel an
// acme::task pool of --workers — so the comparison isolates the runtime,
// not the bookkeeping around it. Every repetition checks the merged commit
// digest and the per-shard outcome digest for byte-identity between the two
// drains (exit 1 on divergence: a perf win that breaks determinism loses).
//
// Two gates, enforced by the binary itself:
//   * allocation freedom: a TU-local operator-new hook brackets the
//     measured parallel drain; any steady-state heap allocation at
//     --workers 8 exits 1 (the runner's commit logs and the pool's task
//     rings are pre-grown by a warm-up repetition).
//   * speedup: median parallel events/s must be >= --min-speedup x the
//     serial median — enforced only when the machine has at least
//     --workers hardware threads (a 1-core CI box cannot exhibit
//     parallelism; the determinism oracle still runs there).
//
// Flags: --workers W --shards N --scale S --reps R --seed S --window SECONDS
//        --min-speedup X --json out.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace acme;

// Allocation-counting hook (same pattern as bench_micro_engines): every
// global operator new in this binary bumps a counter.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// One drain of the sharded composition: fresh pods over copies of the
// pre-sharded slices, windows merged by the runner. Setup (trace copies,
// begin_replay table sizing, reserve calls) happens before the bracketed
// region; only the drain itself is timed and allocation-counted.
struct DrainResult {
  double wall = 0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  std::uint64_t digest = 0;  // shard outcomes + merged commit stream
};

DrainResult drain_once(const core::ClusterSetup& setup,
                       const std::vector<trace::Trace>& slices,
                       task::Pool* pool, double lookahead,
                       std::size_t reserve_commits) {
  const std::size_t shards = slices.size();
  std::vector<std::unique_ptr<sched::SchedulerReplay>> pods;
  pods.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    pods.push_back(std::make_unique<sched::SchedulerReplay>(
        setup.spec, setup.sched_config));
    pods[s]->begin_replay(trace::Trace(slices[s]));
  }
  sim::WindowRunner runner;
  for (std::size_t s = 0; s < shards; ++s)
    runner.add_partition(pods[s]->engine(), static_cast<std::uint32_t>(s));
  if (reserve_commits > 0) runner.reserve(reserve_commits);
  if (pool != nullptr) pool->reserve(64);

  DrainResult out;
  const std::uint64_t allocs_before = heap_allocs();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::WindowStats stats = runner.run(pool, lookahead);
  const auto t1 = std::chrono::steady_clock::now();
  out.allocs = heap_allocs() - allocs_before;
  out.wall = std::chrono::duration<double>(t1 - t0).count();
  out.events = stats.events;

  // Digest: per-shard outcomes in shard order, then the merged commit
  // stream — byte-identical across drains iff the runtime changed nothing
  // observable (same fold ShardedReplay::digest uses).
  common::Fnv1a fold;
  const auto fold_u64 = [&fold](std::uint64_t v) {
    fold.update(std::string_view(reinterpret_cast<const char*>(&v), sizeof v));
  };
  for (std::size_t s = 0; s < shards; ++s) {
    const sched::ReplayResult result = pods[s]->finish_replay();
    std::uint64_t makespan_bits;
    static_assert(sizeof makespan_bits == sizeof result.makespan);
    std::memcpy(&makespan_bits, &result.makespan, sizeof makespan_bits);
    fold_u64(makespan_bits);
    fold_u64(result.unstarted);
    fold_u64(result.jobs.size());
  }
  fold_u64(runner.commit_digest());
  out.digest = fold.digest();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t workers = 8;
  std::uint64_t shards = 8;
  double scale = 64.0;  // BM_SixMonthReplay's scale: distributions intact,
                        // job volume divided for bench-speed iteration
  std::uint64_t reps = 3;
  std::uint64_t seed = 42;
  double window = 0;  // <= 0: one conservative window per drain
  double min_speedup = 3.0;
  std::string json_path;

  common::FlagSet flags("bench_parallel_replay");
  flags.add("--workers", &workers, "pool width for the parallel column");
  flags.add("--shards", &shards, "pods the trace is split across");
  flags.add("--scale", &scale, "trace scale (64 = 1/64 job volume)");
  flags.add("--reps", &reps, "repetitions; medians are reported");
  flags.add("--seed", &seed, "trace synthesis seed");
  flags.add("--window", &window,
            "lookahead window seconds (0 = drain in a single window)");
  flags.add("--min-speedup", &min_speedup,
            "parallel/serial gate, enforced when the machine has >= "
            "--workers hardware threads");
  flags.add("--json", &json_path,
            "write a BENCH-format results JSON for tools/bench_compare.py");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_parallel_replay: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  if (workers == 0) workers = 1;
  if (shards == 0) shards = 1;
  if (reps == 0) reps = 1;
  const double lookahead =
      window > 0 ? window : std::numeric_limits<double>::infinity();
  const std::size_t cores = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());

  bench::header("ParallelReplay",
                "Work-stealing window drain vs serial, one sharded replay");
  std::printf("seren @ scale %.3g, %llu shards, %llu workers, %llu reps "
              "(%zu hardware threads)\n",
              scale, static_cast<unsigned long long>(shards),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(reps), cores);

  core::ClusterSetup setup = core::seren_setup();
  world::ScenarioSpec scenario = world::seren_scenario();
  scenario.scale = scale;
  scenario.seed = seed;
  const trace::Trace jobs = world::synthesize_trace(scenario);
  const std::vector<trace::Trace> slices = sched::shard_trace(jobs, shards);
  std::printf("trace: %zu jobs -> %zu per shard (round-robin)\n", jobs.size(),
              slices.empty() ? 0 : slices[0].size());

  task::Pool pool(static_cast<std::size_t>(workers));

  // Warm-up drains, untimed: grow the engines' high-water marks, the
  // runner's commit logs and the pool's task rings; also yields the commit
  // count the measured runs reserve against.
  const DrainResult warm_serial =
      drain_once(setup, slices, nullptr, lookahead, 0);
  const std::size_t reserve_commits =
      static_cast<std::size_t>(warm_serial.events) + 1024;
  const DrainResult warm_parallel =
      drain_once(setup, slices, &pool, lookahead, reserve_commits);
  if (warm_parallel.digest != warm_serial.digest) {
    std::fprintf(stderr,
                 "bench_parallel_replay: warm-up digest divergence — the "
                 "parallel drain is not byte-identical to serial\n");
    return 1;
  }

  std::vector<double> serial_walls, parallel_walls;
  std::uint64_t parallel_allocs = 0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const DrainResult s =
        drain_once(setup, slices, nullptr, lookahead, reserve_commits);
    const DrainResult p =
        drain_once(setup, slices, &pool, lookahead, reserve_commits);
    if (s.digest != warm_serial.digest || p.digest != warm_serial.digest) {
      std::fprintf(stderr,
                   "bench_parallel_replay: digest divergence on rep %llu — "
                   "serial/parallel drains must be byte-identical\n",
                   static_cast<unsigned long long>(rep));
      return 1;
    }
    serial_walls.push_back(s.wall);
    parallel_walls.push_back(p.wall);
    parallel_allocs += p.allocs;
  }

  const double serial_s = median(serial_walls);
  const double parallel_s = median(parallel_walls);
  const double events = static_cast<double>(warm_serial.events);
  const double serial_eps = serial_s > 0 ? events / serial_s : 0;
  const double parallel_eps = parallel_s > 0 ? events / parallel_s : 0;
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0;
  const bool gate_active = cores >= static_cast<std::size_t>(workers);

  common::Table table({"metric", "value"});
  table.add_row({"events per drain", std::to_string(warm_serial.events)});
  table.add_row({"serial drain (median)",
                 common::Table::num(serial_s * 1e3, 2) + " ms"});
  table.add_row({"parallel drain (median)",
                 common::Table::num(parallel_s * 1e3, 2) + " ms"});
  table.add_row({"serial events/s",
                 common::Table::num(serial_eps / 1e6, 2) + "M"});
  table.add_row({"parallel events/s",
                 common::Table::num(parallel_eps / 1e6, 2) + "M"});
  table.add_row({"speedup", common::Table::num(speedup, 2) + "x"});
  table.add_row({"pool steals", std::to_string(pool.steals())});
  table.add_row({"parallel drain allocations",
                 std::to_string(parallel_allocs)});
  std::printf("%s", table.render().c_str());

  bench::recap("serial == parallel digest",
               "byte-identical at any worker count (DESIGN.md §13)",
               "identical on all " + std::to_string(reps + 1) + " drains");
  bench::recap("parallel speedup at " + std::to_string(workers) + " workers",
               ">= " + common::Table::num(min_speedup, 1) + "x serial",
               common::Table::num(speedup, 2) + "x" +
                   (gate_active ? "" : " (gate skipped: " +
                                           std::to_string(cores) +
                                           " hardware threads)"));
  bench::recap("measured-drain heap allocations", "0 (pooled hot path)",
               std::to_string(parallel_allocs));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"workers\": " << workers << ",\n  \"results\": {\n"
        << "    \"bench_parallel_replay/serial\": { \"items_per_second\": "
        << static_cast<std::uint64_t>(serial_eps) << " },\n"
        << "    \"bench_parallel_replay/workers:" << workers
        << "\": { \"items_per_second\": "
        << static_cast<std::uint64_t>(parallel_eps)
        << ", \"run_allocs\": " << parallel_allocs << " }\n  }\n}\n";
    std::printf("[json] results written to %s\n", json_path.c_str());
  }

  if (parallel_allocs != 0) {
    std::fprintf(stderr,
                 "bench_parallel_replay: %llu heap allocations in the "
                 "measured parallel drain (expected 0)\n",
                 static_cast<unsigned long long>(parallel_allocs));
    return 1;
  }
  if (gate_active && speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_parallel_replay: %.2fx speedup at %llu workers on "
                 "%zu hardware threads (gate: >= %.1fx)\n",
                 speedup, static_cast<unsigned long long>(workers), cores,
                 min_speedup);
    return 1;
  }
  return 0;
}
