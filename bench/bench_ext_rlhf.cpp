// Extension bench (paper §7 "efficient RLHF"): the RLHF iteration anatomy —
// rollout generation dominates wall-clock at very low SM activity, the
// system-support gap the paper flags for future work.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ext_rlhf");
  bench::header("Extension", "RLHF iteration anatomy (7B actor, 1024 GPUs)");

  parallel::PretrainExecutionModel model(parallel::llm_7b());
  parallel::PretrainExecutionModel::RlhfConfig cfg;
  cfg.world = 1024;
  const auto rlhf = model.step_rlhf(cfg);

  parallel::HierZeroConfig dense;
  dense.world = 1024;
  const auto pretrain = model.step_hier_zero(dense);

  common::Rng rng(42);
  std::printf("RLHF iteration (rollout -> score -> PPO -> sync):\n  |%s|\n",
              common::sparkline(rlhf.sample(0.01, rlhf.step_time(), rng), 100).c_str());
  std::printf("dense pretraining step for comparison:\n  |%s|\n\n",
              common::sparkline(pretrain.sample(0.001, pretrain.step_time(), rng), 100)
                  .c_str());

  common::Table table({"Phase", "duration", "share", "SM level"});
  double gen = 0;
  for (const auto& p : rlhf.phases) {
    if (p.kind == "rollout-decode") gen += p.duration;
  }
  table.add_row({"rollout generation", common::Table::num(gen, 1) + " s",
                 common::Table::pct(gen / rlhf.step_time()), "12%"});
  for (const auto& p : rlhf.phases) {
    if (p.kind == "rollout-decode") continue;
    table.add_row({p.kind, common::Table::num(p.duration, 2) + " s",
                   common::Table::pct(p.duration / rlhf.step_time()),
                   common::Table::pct(p.sm_level)});
  }
  std::printf("%s", table.render().c_str());

  // Profile it like DCGM would and export the counters.
  telemetry::MetricStore store;
  telemetry::JobProfiler profiler({.sample_interval = 0.01});
  const auto n = profiler.profile(rlhf, "rlhf-7b", store);
  telemetry::write_csv_file("/tmp/acme_rlhf_profile.csv", store);
  std::printf("\nDCGM-style profile: %zu samples -> /tmp/acme_rlhf_profile.csv\n", n);

  bench::recap("RLHF mean SM vs dense pretraining", "far lower (future work)",
               common::Table::pct(rlhf.mean_sm()) + " vs " +
                   common::Table::pct(pretrain.mean_sm()));
  bench::recap("generation share of the iteration", "dominant",
               common::Table::pct(gen / rlhf.step_time()));
  return bench::finish(obs_cli);
}
