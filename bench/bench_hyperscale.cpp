// Hyperscale sweep: goodput, recovery TTR and outage localization as the
// fleet grows from one Seren-sized room to a 50k+-GPU multi-datacenter
// estate (DESIGN.md §14, ROADMAP item 2).
//
// Each point runs world::hyperscale_scenario(n_gpus, n_dcs) end-to-end on
// one event spine: trace volume proportional to the fleet, tiered fabric
// (rail / spine / long-haul), per-job Table 3 failures plus correlated
// domain outages (switch / PDU / cooling, Table 2) that cordon a whole
// subtree and kill every resident job in one injection. The sweep shows the
// scale trend the paper's §5/§6.1 story predicts: bigger fleets see more
// frequent kills and bigger blast radii, so goodput erodes and mean TTR
// grows unless recovery stays localized.
//
// Two gates, enforced by the binary itself:
//   * allocation freedom: a TU-local operator-new hook brackets each
//     measured drain (prepare() and finish() are outside); any heap
//     allocation inside the drain — scheduler, failure chains, domain
//     cordons and kills included — exits 1.
//   * memory O(live entities): peak RSS per entity (jobs + GPUs) must stay
//     under a generous 64 KiB bound; an accidental O(n^2) structure at 50k
//     GPUs fails loudly instead of quietly swapping.
//
// Flags: --full (scale=1: the full six-month trace, 10M+ jobs at 50k GPUs;
//         minutes of wall clock and GBs of RSS — not the CI default)
//        --json out.json (trajectory rows for tools/bench_compare.py)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace acme;

// Allocation-counting hook (same pattern as bench_parallel_replay): every
// global operator new in this binary bumps a counter.
namespace {
std::uint64_t g_heap_allocs = 0;
void* counted_alloc(std::size_t n, std::size_t align) {
  ++g_heap_allocs;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// Peak RSS so far, from /proc/self/status VmHWM (kB). 0 when unavailable
// (non-Linux); the memory gate is skipped there.
std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
  }
  return 0;
}

struct SweepPoint {
  const char* label;
  int gpus;
  int dcs;
};

struct SweepRow {
  std::string name;
  int gpus = 0;
  int dcs = 0;
  std::size_t jobs = 0;
  std::size_t events = 0;
  double drain_wall = 0;
  std::uint64_t drain_allocs = 0;
  world::WorldReport report;
  std::uint64_t rss_per_entity = 0;  // peak-so-far / (jobs + gpus)
};

SweepRow run_point(const SweepPoint& point, bool full) {
  world::ScenarioSpec spec = world::hyperscale_scenario(point.gpus, point.dcs);
  if (full) spec.scale = 1.0;  // the whole six-month window, 10M+ jobs at 50k
  // Gated config: the occupancy timeline grows with the (unknowable ahead of
  // time) makespan, so sampling is off for the allocation-freedom bracket;
  // goodput/TTR/outage accounting never touch it.
  spec.sample_interval_seconds = 0;
  spec.fleet_samples = 0;
  SweepRow row;
  row.name = spec.name;
  row.gpus = point.gpus;
  row.dcs = point.dcs;

  world::World w(spec);
  w.prepare();  // trace synthesis + table sizing, outside the bracket

  const std::uint64_t allocs_before = g_heap_allocs;
  const auto t0 = std::chrono::steady_clock::now();
  row.events =
      w.run_until(std::numeric_limits<double>::infinity());  // measured drain
  const auto t1 = std::chrono::steady_clock::now();
  row.drain_allocs = g_heap_allocs - allocs_before;
  row.drain_wall = std::chrono::duration<double>(t1 - t0).count();

  row.report = w.finish();
  row.jobs = row.report.replay.jobs.size();
  const std::uint64_t entities =
      static_cast<std::uint64_t>(row.jobs) +
      static_cast<std::uint64_t>(point.gpus);
  const std::uint64_t rss = peak_rss_bytes();
  row.rss_per_entity = entities > 0 ? rss / entities : 0;
  return row;
}

double mean_ttr(const world::WorldReport& r) {
  const int kills = r.failures_injected + r.domain_jobs_killed;
  return kills > 0 ? r.recovery_stall_seconds / kills : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t full = 0;
  std::string json_path;
  common::FlagSet flags("bench_hyperscale");
  flags.add("--full", &full,
            "1 = run the full six-month trace per point (10M+ jobs at 50k "
            "GPUs; minutes of wall clock)");
  flags.add("--json", &json_path, "write trajectory rows as JSON");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_hyperscale: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  bench::header("Hyperscale",
                "Goodput / TTR / recovery localization vs fleet scale");

  const SweepPoint points[] = {
      {"seren-sized", 4704, 1},
      {"mid", 16384, 1},
      {"hyperscale", 50048, 3},
  };
  std::vector<SweepRow> rows;
  for (const SweepPoint& point : points)
    rows.push_back(run_point(point, full != 0));

  common::Table table({"fleet", "dcs", "jobs", "events/s", "goodput",
                       "mean TTR", "domain outages", "jobs killed",
                       "nodes cordoned", "drain allocs", "RSS/entity"});
  for (const SweepRow& row : rows) {
    const world::WorldReport& r = row.report;
    table.add_row(
        {row.name, std::to_string(row.dcs), std::to_string(row.jobs),
         common::Table::num(
             row.drain_wall > 0 ? row.events / row.drain_wall : 0, 0),
         common::Table::pct(r.goodput),
         common::format_duration(mean_ttr(r)),
         std::to_string(r.domain_failures_injected),
         std::to_string(r.failures_injected + r.domain_jobs_killed),
         std::to_string(r.domain_nodes_cordoned),
         std::to_string(row.drain_allocs),
         std::to_string(row.rss_per_entity) + " B"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::recap("goodput at 50k+/3dc",
               "§6.1: waste stays bounded when recovery is localized",
               common::Table::pct(rows.back().report.goodput));
  bench::recap(
      "mean TTR trend",
      "TTR grows with blast radius (Table 2 outages cordon whole subtrees)",
      common::format_duration(mean_ttr(rows.front().report)) + " -> " +
          common::format_duration(mean_ttr(rows.back().report)));
  bench::recap(
      "correlated outages at 50k",
      "switch/PDU/cooling events kill all residents in one injection",
      std::to_string(rows.back().report.domain_failures_injected) +
          " outages, " +
          std::to_string(rows.back().report.domain_jobs_killed) +
          " resident kills");

  // Gates: any measured-drain allocation, or super-linear memory, fails the
  // bench regardless of throughput.
  bool ok = true;
  for (const SweepRow& row : rows) {
    if (row.drain_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: %s measured drain made %llu heap allocations "
                   "(expected 0)\n",
                   row.name.c_str(),
                   static_cast<unsigned long long>(row.drain_allocs));
      ok = false;
    }
    if (row.rss_per_entity > 64 * 1024) {
      std::fprintf(stderr,
                   "FAIL: %s peak RSS %llu B/entity exceeds the 64 KiB "
                   "O(live entities) bound\n",
                   row.name.c_str(),
                   static_cast<unsigned long long>(row.rss_per_entity));
      ok = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"results\": {\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      const world::WorldReport& r = row.report;
      out << "    \"bench_hyperscale/" << row.name
          << "/events\": { \"items_per_second\": "
          << (row.drain_wall > 0 ? row.events / row.drain_wall : 0)
          << ", \"run_allocs\": " << row.drain_allocs << " },\n";
      out << "    \"bench_hyperscale/" << row.name
          << "/goodput\": { \"items_per_second\": " << r.goodput << " },\n";
      out << "    \"bench_hyperscale/" << row.name
          << "/mean_ttr\": { \"seconds\": " << mean_ttr(r)
          << ", \"rss_per_entity\": " << row.rss_per_entity << " }"
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    std::printf("[json] results written to %s\n", json_path.c_str());
  }

  return ok ? 0 : 1;
}
