// §6.1-1: asynchronous checkpointing — blocking time and overhead reduction
// for the 7B and 123B models at a 30-minute interval, plus a live run of the
// real threaded writer.
//
// Monte Carlo conversion: production storage bandwidth is not a constant, so
// the bench replicates the timing model under lognormal bandwidth jitter
// (PCIe D2H, storage NICs, remote FS aggregate) and reports 95% confidence
// intervals on the stall-reduction range.
// Flags: --replicas N --threads K --seed S --json out.json
#include <chrono>

#include "bench_util.h"

using namespace acme;

namespace {

struct CkptSample {
  double speedup_7b = 0;
  double speedup_123b = 0;
  double async_overhead_123b_pct = 0;  // of training time, 30 min interval
};

// One draw of the jittered operating point: each bandwidth gets an
// independent lognormal multiplier with ~15% dispersion (median 1), the
// shape the paper's Fig 16-left contention curves motivate.
CkptSample sample_ckpt(common::Rng& rng) {
  constexpr double kSigma = 0.15;
  ckpt::CheckpointTimingConfig config;
  config.pcie_bytes_per_sec *= rng.lognormal(0.0, kSigma);
  config.backend_bytes_per_sec *= rng.lognormal(0.0, kSigma);
  config.node_nic_bytes_per_sec *= rng.lognormal(0.0, kSigma);
  ckpt::CheckpointTimingModel timing(config);

  const double interval = 30 * common::kMinute;
  CkptSample out;
  {
    const double params = parallel::llm_7b().params();
    out.speedup_7b = timing.sync_blocking_seconds(params, 64) /
                     timing.async_blocking_seconds(params, 64);
  }
  {
    const double params = parallel::llm_123b().params();
    const double async_b = timing.async_blocking_seconds(params, 2048);
    out.speedup_123b = timing.sync_blocking_seconds(params, 2048) / async_b;
    out.async_overhead_123b_pct =
        100.0 * timing.overhead_fraction(async_b, interval);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mc::ReplicationOptions defaults;
  defaults.replicas = 16;
  defaults.stream_label = "sec61-ckpt";
  defaults.chunk = 8;  // replicas are microsecond-scale; amortize the queue
  const bench::BenchCli obs_cli =
      bench::parse_cli(argc, argv, "bench_sec61_checkpointing", defaults);
  const mc::McCli& cli = obs_cli.mc;
  bench::header("Sec 6.1", "Asynchronous checkpointing speedups");

  ckpt::CheckpointTimingModel timing;
  const double interval = 30 * common::kMinute;

  struct Case {
    const char* name;
    double params;
    int world;
  };
  const Case cases[] = {
      {"7B  (64 GPUs)", parallel::llm_7b().params(), 64},
      {"104B (1024 GPUs)", parallel::llm_104b().params(), 1024},
      {"123B (2048 GPUs)", parallel::llm_123b().params(), 2048},
  };

  common::Table table({"Model", "ckpt size", "sync stall", "async stall",
                       "speedup", "sync overhead", "async overhead"});
  double min_speedup = 1e9, max_speedup = 0;
  for (const auto& c : cases) {
    const double sync = timing.sync_blocking_seconds(c.params, c.world);
    const double async_b = timing.async_blocking_seconds(c.params, c.world);
    const double speedup = sync / async_b;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    table.add_row({c.name, common::format_bytes(timing.total_bytes(c.params)),
                   common::Table::num(sync, 2) + " s",
                   common::Table::num(async_b, 2) + " s",
                   common::Table::num(speedup, 1) + "x",
                   common::Table::pct(timing.overhead_fraction(sync, interval), 2),
                   common::Table::pct(timing.overhead_fraction(async_b, interval), 3)});
  }
  std::printf("%s", table.render().c_str());

  // Exercise the real threaded writer: stage 64 MB snapshots against a slow
  // sink and show the trainer-visible stall vs the persist time.
  ckpt::NullSink sink(400e6);  // 400 MB/s "remote storage"
  ckpt::AsyncCheckpointWriter writer(sink, 3);
  std::vector<std::byte> state(64 << 20);
  double total_stall = 0;
  const auto persist_start = std::chrono::steady_clock::now();
  for (std::uint64_t step = 1; step <= 4; ++step) {
    const auto t0 = std::chrono::steady_clock::now();
    writer.snapshot(step * 100, state);
    total_stall += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }
  writer.flush();
  const double persist_total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - persist_start)
          .count();
  std::printf(
      "\nlive AsyncCheckpointWriter: 4 x 64 MB snapshots\n"
      "  trainer-visible stall: %.3f s total | background persist: %.3f s\n"
      "  persisted %llu, dropped %llu\n",
      total_stall, persist_total,
      static_cast<unsigned long long>(writer.stats().persisted),
      static_cast<unsigned long long>(writer.stats().dropped));

  // Multi-seed replication under storage bandwidth jitter.
  const auto run = mc::run_replicas<CkptSample>(
      cli.options,
      [](common::Rng& rng, std::size_t) { return sample_ckpt(rng); });

  mc::MetricAggregator s7b, s123b, overhead;
  mc::fold_metric(run, [](const CkptSample& s) { return s.speedup_7b; }, s7b);
  mc::fold_metric(run, [](const CkptSample& s) { return s.speedup_123b; }, s123b);
  mc::fold_metric(run, [](const CkptSample& s) { return s.async_overhead_123b_pct; },
                  overhead);

  mc::BenchReport report("sec61_checkpointing");
  report.set_timing(run.timing, cli.options.replicas);
  report.add_metric("ckpt_speedup_7b", s7b, "x");
  report.add_metric("ckpt_speedup_123b", s123b, "x");
  report.add_metric("async_overhead_123b_30min", overhead, "%");

  bench::recap("checkpoint stall reduction (7B..123B)", "3.6x ~ 58.7x",
               common::Table::num(min_speedup, 1) + "x ~ " +
                   common::Table::num(max_speedup, 1) + "x");
  bench::recap("7B stall reduction under bw jitter", "3.6x",
               common::Table::num(s7b.mean(), 1) + "x",
               mc::format_with_ci(s7b.mean(), s7b.ci95(), "x", 2));
  bench::recap("123B stall reduction under bw jitter", "58.7x",
               common::Table::num(s123b.mean(), 1) + "x",
               mc::format_with_ci(s123b.mean(), s123b.ci95(), "x", 2));
  bench::recap("live writer stall vs persist", "stall << persist",
               common::Table::num(total_stall, 2) + " s vs " +
                   common::Table::num(persist_total, 2) + " s");
  bench::mc_footer(report, cli);
  return bench::finish(obs_cli);
}
