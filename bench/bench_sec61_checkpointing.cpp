// §6.1-1: asynchronous checkpointing — blocking time and overhead reduction
// for the 7B and 123B models at a 30-minute interval, plus a live run of the
// real threaded writer.
#include <chrono>

#include "bench_util.h"

using namespace acme;

int main() {
  bench::header("Sec 6.1", "Asynchronous checkpointing speedups");

  ckpt::CheckpointTimingModel timing;
  const double interval = 30 * common::kMinute;

  struct Case {
    const char* name;
    double params;
    int world;
  };
  const Case cases[] = {
      {"7B  (64 GPUs)", parallel::llm_7b().params(), 64},
      {"104B (1024 GPUs)", parallel::llm_104b().params(), 1024},
      {"123B (2048 GPUs)", parallel::llm_123b().params(), 2048},
  };

  common::Table table({"Model", "ckpt size", "sync stall", "async stall",
                       "speedup", "sync overhead", "async overhead"});
  double min_speedup = 1e9, max_speedup = 0;
  for (const auto& c : cases) {
    const double sync = timing.sync_blocking_seconds(c.params, c.world);
    const double async_b = timing.async_blocking_seconds(c.params, c.world);
    const double speedup = sync / async_b;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    table.add_row({c.name, common::format_bytes(timing.total_bytes(c.params)),
                   common::Table::num(sync, 2) + " s",
                   common::Table::num(async_b, 2) + " s",
                   common::Table::num(speedup, 1) + "x",
                   common::Table::pct(timing.overhead_fraction(sync, interval), 2),
                   common::Table::pct(timing.overhead_fraction(async_b, interval), 3)});
  }
  std::printf("%s", table.render().c_str());

  // Exercise the real threaded writer: stage 64 MB snapshots against a slow
  // sink and show the trainer-visible stall vs the persist time.
  ckpt::NullSink sink(400e6);  // 400 MB/s "remote storage"
  ckpt::AsyncCheckpointWriter writer(sink, 3);
  std::vector<std::byte> state(64 << 20);
  double total_stall = 0;
  const auto persist_start = std::chrono::steady_clock::now();
  for (std::uint64_t step = 1; step <= 4; ++step) {
    const auto t0 = std::chrono::steady_clock::now();
    writer.snapshot(step * 100, state);
    total_stall += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }
  writer.flush();
  const double persist_total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - persist_start)
          .count();
  std::printf(
      "\nlive AsyncCheckpointWriter: 4 x 64 MB snapshots\n"
      "  trainer-visible stall: %.3f s total | background persist: %.3f s\n"
      "  persisted %llu, dropped %llu\n",
      total_stall, persist_total,
      static_cast<unsigned long long>(writer.stats().persisted),
      static_cast<unsigned long long>(writer.stats().dropped));

  bench::recap("checkpoint stall reduction (7B..123B)", "3.6x ~ 58.7x",
               common::Table::num(min_speedup, 1) + "x ~ " +
                   common::Table::num(max_speedup, 1) + "x");
  bench::recap("live writer stall vs persist", "stall << persist",
               common::Table::num(total_stall, 2) + " s vs " +
                   common::Table::num(persist_total, 2) + " s");
  return 0;
}
