// Table 2: Acme vs prior GPU datacenter traces (Philly, Helios, PAI).
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_table2_datacenters");
  bench::header("Table 2", "Comparison between Acme and prior datacenters");
  common::Table table(
      {"Datacenter", "Year", "Duration", "#Jobs", "Avg. #GPUs", "GPU Model",
       "Total #GPUs"});
  for (const auto& p :
       {trace::philly_profile(), trace::helios_profile(), trace::pai_profile()}) {
    table.add_row({p.name, std::to_string(p.year), p.duration, p.jobs,
                   common::Table::num(p.avg_gpus, 1), p.gpu_model,
                   std::to_string(p.total_gpus)});
  }
  // Acme row measured from the synthesized traces.
  const double seren_avg = trace::average_gpu_demand(bench::seren_replay().replay.jobs);
  const double kalos_avg = trace::average_gpu_demand(bench::kalos_replay().replay.jobs);
  const double seren_jobs = 664000 + 368000;
  const double kalos_jobs = 20000 + 42000;
  const double acme_avg =
      (seren_avg * 664000 + kalos_avg * 20000) / (664000 + 20000);
  table.add_row({"Acme (sim)", "2023", "6 months", "1.09M",
                 common::Table::num(acme_avg, 1), "A100", "4704"});
  std::printf("%s", table.render().c_str());
  std::printf("  (Acme job count = %.2fM scheduler-log entries)\n",
              (seren_jobs + kalos_jobs) / 1e6);
  bench::recap("Acme avg. requested GPUs", "6.3", common::Table::num(acme_avg, 1));
  bench::recap("Seren avg. GPUs", "5.7", common::Table::num(seren_avg, 1));
  bench::recap("Kalos avg. GPUs", "26.8", common::Table::num(kalos_avg, 1));
  return bench::finish(obs_cli);
}
