// Micro-benchmarks (google-benchmark) for the performance-critical engines:
// the event queue, the storage fair-share solver, log template mining, the
// vector store, and the trace synthesizer.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/acme.h"

using namespace acme;

// Allocation-counting hook: every global operator new in this binary bumps a
// counter, so benchmarks can assert allocation-freedom of a region (see
// BM_SixMonthReplay's allocs_per_event counter — the replay's steady-state
// schedule→pop→dispatch path must stay at zero).
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

void BM_EventEngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    common::Rng rng(1);
    for (std::size_t i = 0; i < n; ++i)
      engine.schedule_at(rng.uniform(0, 1e6), [] {});
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventEngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_StorageFairShare(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    storage::StorageNetwork net(engine, storage::seren_storage_config());
    for (int i = 0; i < flows; ++i) net.start_flow(i / 8, 1e9, [] {});
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) * state.iterations());
}
BENCHMARK(BM_StorageFairShare)->Arg(8)->Arg(64)->Arg(256);

void BM_LogTemplateMining(benchmark::State& state) {
  failure::LogSynthesizer synth({.steps = 1000});
  common::Rng rng(2);
  const auto log = synth.healthy_run(rng);
  for (auto _ : state) {
    diagnosis::FilterRules rules;
    diagnosis::LogAgent agent;
    benchmark::DoNotOptimize(agent.update_rules(log.lines, rules));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(log.lines.size()) *
                          state.iterations());
}
BENCHMARK(BM_LogTemplateMining);

void BM_LogCompression(benchmark::State& state) {
  failure::LogSynthesizer synth({.steps = 1000});
  common::Rng rng(3);
  const auto log = synth.healthy_run(rng);
  diagnosis::FilterRules rules;
  diagnosis::LogAgent agent;
  agent.update_rules(log.lines, rules);
  for (auto _ : state) benchmark::DoNotOptimize(rules.compress(log.lines));
  state.SetItemsProcessed(static_cast<std::int64_t>(log.lines.size()) *
                          state.iterations());
}
BENCHMARK(BM_LogCompression);

void BM_VectorStoreQuery(benchmark::State& state) {
  diagnosis::VectorStore store;
  common::Rng rng(4);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    std::string doc;
    for (int w = 0; w < 20; ++w)
      doc += "tok" + std::to_string(rng.uniform_int(0, 500)) + " ";
    store.add(diagnosis::embed_text(doc), "label" + std::to_string(i % 29));
  }
  const auto query = diagnosis::embed_text("tok1 tok2 tok3 error cuda");
  for (auto _ : state) benchmark::DoNotOptimize(store.query(query, 5));
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_VectorStoreQuery)->Arg(100)->Arg(2000);

void BM_TraceSynthesis(benchmark::State& state) {
  auto profile = trace::scaled(trace::seren_profile(), 64.0);
  profile.cpu_jobs = 0;
  for (auto _ : state) {
    trace::TraceSynthesizer synth(profile);
    benchmark::DoNotOptimize(synth.generate());
  }
}
BENCHMARK(BM_TraceSynthesis);

void BM_SixMonthReplay(benchmark::State& state) {
  world::ScenarioSpec scenario = world::seren_scenario();
  scenario.scale = 64.0;
  const auto jobs = world::synthesize_trace(scenario);
  std::uint64_t run_allocs = 0, run_events = 0;
  for (auto _ : state) {
    sched::SchedulerReplay replay(cluster::seren_spec(),
                                  sched::seren_scheduler_config());
    // Split the one-call replay into its phases so the allocation counter
    // brackets the pure event loop: setup (trace copy, table sizing) and
    // teardown allocate, the schedule→pop→dispatch loop must not.
    replay.begin_replay(jobs);
    const std::uint64_t before = heap_allocs();
    replay.engine().run();
    run_allocs += heap_allocs() - before;
    run_events += replay.engine().events_fired();
    benchmark::DoNotOptimize(replay.finish_replay());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs.size()) *
                          state.iterations());
  state.counters["run_allocs"] = static_cast<double>(run_allocs);
  state.counters["allocs_per_event"] =
      run_events > 0 ? static_cast<double>(run_allocs) /
                           static_cast<double>(run_events)
                     : 0.0;
}
BENCHMARK(BM_SixMonthReplay);

}  // namespace
