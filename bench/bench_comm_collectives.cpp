// Collective-communication sweep: runs the acme::comm alpha-beta models over
// communicator size x message size for both clusters and prints NCCL-style
// bus-bandwidth tables (the busbw column nccl-tests reports), so the fabric
// model can be eyeballed against hardware line rates: single-node rings
// should saturate the NVLink bus rate, multi-node hierarchical worlds the
// per-node NIC aggregate, and Seren's shared HDR NIC should sit far below
// Kalos' 4x200 Gb/s compute rail.
#include "bench_util.h"

using namespace acme;

namespace {

const double kSweepBytes[] = {1 * common::kMiB, 16 * common::kMiB,
                              128 * common::kMiB, 1 * common::kGiB,
                              4 * common::kGiB};
const int kSweepWorlds[] = {8, 16, 64, 256, 1024, 2048};

std::string gbs(double bytes_per_sec) {
  return common::Table::num(bytes_per_sec / common::kGB, 1);
}

// Ring inside one node, hierarchical across nodes — NCCL's default choice.
comm::Algorithm pick(const comm::CollectiveModel& model, const comm::World& w) {
  return model.nodes(w) > 1 ? comm::Algorithm::kHierarchical
                            : comm::Algorithm::kRing;
}

double allreduce_busbw(const comm::CollectiveModel& model, int gpus,
                       double bytes) {
  comm::World w;
  w.gpus = gpus;
  const double t = model.all_reduce(w, bytes, pick(model, w)).seconds();
  return comm::bus_bandwidth_allreduce(gpus, bytes, t);
}

void sweep_cluster(const char* name, const comm::FabricConfig& fabric) {
  const comm::CollectiveModel model(fabric);
  std::printf("\n-- %s: all-reduce bus bandwidth (GB/s) --\n", name);
  std::vector<std::string> head{"Message"};
  for (int gpus : kSweepWorlds) head.push_back(std::to_string(gpus) + " GPUs");
  common::Table table(head);
  for (double bytes : kSweepBytes) {
    std::vector<std::string> row{common::format_bytes(bytes)};
    for (int gpus : kSweepWorlds)
      row.push_back(gbs(allreduce_busbw(model, gpus, bytes)));
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_comm_collectives");
  bench::header("comm", "Collective sweep vs NCCL-style bus bandwidth");

  sweep_cluster("Kalos (4x200 Gb/s compute NICs)", comm::kalos_fabric());
  sweep_cluster("Seren (1x200 Gb/s NIC shared with storage)",
                comm::seren_fabric());

  // Algorithm crossover at a fixed multi-node world: trees win the latency
  // regime, rings the bandwidth regime, hierarchical splits the difference
  // by keeping the (p-1) ring hops on NVLink.
  const comm::CollectiveModel kalos(comm::kalos_fabric());
  comm::World w64;
  w64.gpus = 64;
  std::printf("\n-- Kalos, 64 GPUs: all-reduce time by algorithm --\n");
  common::Table algo({"Message", "ring", "tree", "hierarchical", "winner"});
  for (double bytes : {8 * common::kKiB, 1 * common::kMiB, 64 * common::kMiB,
                       1 * common::kGiB}) {
    const double ring = kalos.all_reduce(w64, bytes, comm::Algorithm::kRing).seconds();
    const double tree = kalos.all_reduce(w64, bytes, comm::Algorithm::kTree).seconds();
    const double hier =
        kalos.all_reduce(w64, bytes, comm::Algorithm::kHierarchical).seconds();
    const double best = std::min({ring, tree, hier});
    algo.add_row({common::format_bytes(bytes), common::Table::num(ring * 1e3, 3),
                  common::Table::num(tree * 1e3, 3),
                  common::Table::num(hier * 1e3, 3),
                  best == hier ? "hierarchical" : (best == tree ? "tree" : "ring")});
  }
  std::printf("%s  (times in ms)\n", algo.render().c_str());

  const double nvlink_bus = kalos.topology().nvlink_bytes_per_sec(0);
  const double kalos_nic = kalos.topology().node_nic_bytes_per_sec(0);
  const comm::CollectiveModel seren(comm::seren_fabric());
  const double seren_nic = seren.topology().node_nic_bytes_per_sec(0);

  const double intra = allreduce_busbw(kalos, 8, 4 * common::kGiB);
  const double inter = allreduce_busbw(kalos, 2048, 4 * common::kGiB);
  // Pure inter-node regime (one rank per node, flat IB ring) isolates the
  // NIC provisioning gap without the shared NVLink stage diluting it.
  comm::World one_per_node;
  one_per_node.gpus = 8;
  one_per_node.ranks_per_node = 1;
  const double ib_ratio =
      seren.all_reduce(one_per_node, 4 * common::kGiB, comm::Algorithm::kRing)
          .seconds() /
      kalos.all_reduce(one_per_node, 4 * common::kGiB, comm::Algorithm::kRing)
          .seconds();

  bench::recap("Kalos single-node busbw @4 GiB", "-> NVLink bus rate (" +
               gbs(nvlink_bus) + " GB/s)", gbs(intra) + " GB/s");
  bench::recap("Kalos 2048-GPU busbw @4 GiB", "< NIC aggregate (" +
               gbs(kalos_nic) + " GB/s)", gbs(inter) + " GB/s");
  bench::recap("Seren/Kalos inter-node slowdown", ">4x (" + gbs(seren_nic) +
               " vs " + gbs(kalos_nic) + " GB/s NIC)",
               common::Table::num(ib_ratio, 1) + "x");
  return bench::finish(obs_cli);
}
