// Fig 12: GPU memory per pipeline rank under the 1F1B schedule.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig12_pipeline_mem");
  bench::header("Fig 12", "Per-pipeline-rank memory under 1F1B (123B, tp=8, pp=4)");

  parallel::PretrainExecutionModel model(parallel::llm_123b());
  parallel::ThreeDConfig cfg;
  const auto ranks = model.per_rank_memory_1f1b(cfg);

  common::Table table({"Pipeline rank", "In-flight microbatches", "Peak memory"});
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const int in_flight =
        std::min(cfg.micro_batches, cfg.pipeline_parallel - static_cast<int>(r));
    table.add_row({"rank " + std::to_string(r), std::to_string(in_flight),
                   common::format_bytes(ranks[r])});
    bars.emplace_back("rank " + std::to_string(r), ranks[r] / 1e9);
  }
  std::printf("%s", table.render().c_str());
  std::printf("%s", common::plot_bars(bars, 44, "GB").c_str());

  bench::recap("memory imbalance across ranks", "rank 0 highest, monotone drop",
               common::Table::num(ranks.front() / 1e9, 1) + " GB -> " +
                   common::Table::num(ranks.back() / 1e9, 1) + " GB");
  bench::recap("rank0 / rank3 ratio", "~2x",
               common::Table::num(ranks.front() / ranks.back(), 2) + "x");
  std::printf(
      "  note: the imbalance motivates rank-specialized recomputation, as the\n"
      "  paper suggests for balancing pipeline memory.\n");
  return bench::finish(obs_cli);
}
