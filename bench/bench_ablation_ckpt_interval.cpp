// Ablation: checkpoint interval x strategy for the 123B campaign. Frequent
// checkpoints bound the rollback loss but cost stall time — asynchronous
// checkpointing (§6.1-1) collapses that trade-off.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_ckpt_interval");
  bench::header("Ablation",
                "Checkpoint interval x strategy (123B, 2048 GPUs, 20 days, auto recovery)");

  common::Table table({"Strategy", "Interval", "ckpt stall total", "rollback loss",
                       "goodput", "final step"});
  double best_async = 0, best_sync = 0;
  for (bool async_ckpt : {false, true}) {
    for (double interval_min : {5.0, 15.0, 30.0, 60.0, 240.0}) {
      recovery::RunnerConfig cfg;
      cfg.model = parallel::llm_123b();
      cfg.gpus = 2048;
      cfg.ckpt_interval_seconds = interval_min * common::kMinute;
      cfg.async_ckpt = async_ckpt;
      cfg.auto_recovery = true;
      cfg.graceful_cancel = true;
      cfg.horizon_seconds = 20 * common::kDay;
      cfg.seed = 77;
      const auto report = recovery::FaultTolerantRunner(cfg).run();
      table.add_row({async_ckpt ? "async" : "sync",
                     common::Table::num(interval_min, 0) + " min",
                     common::format_duration(report.time_ckpt_stall),
                     std::to_string(report.steps_lost_to_rollback) + " steps",
                     common::Table::pct(report.goodput()),
                     std::to_string(report.final_step)});
      if (async_ckpt)
        best_async = std::max(best_async, report.goodput());
      else
        best_sync = std::max(best_sync, report.goodput());
    }
  }
  std::printf("%s", table.render().c_str());

  bench::recap("async vs sync at their best intervals", "async strictly better",
               common::Table::pct(best_async) + " vs " +
                   common::Table::pct(best_sync) + " goodput");
  bench::recap("why the paper picks 30 min async", "loss bounded, stall negligible",
               "sync forces long intervals (stall) or heavy stalls (loss)");
  return bench::finish(obs_cli);
}
