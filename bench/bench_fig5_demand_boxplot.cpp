// Fig 5: boxplot of GPU demand across workload types.
#include "bench_util.h"

using namespace acme;

namespace {

void print_cluster(const char* name, const trace::Trace& jobs) {
  std::printf("\n-- %s --\n", name);
  common::Table table(
      {"Workload", "whisker-", "Q1", "median", "Q3", "whisker+"});
  for (trace::WorkloadType type : trace::kAllWorkloadTypes) {
    const auto demand = trace::demand_of(jobs, type);
    if (demand.empty()) continue;
    const auto box = common::BoxplotStats::from(demand);
    table.add_row({trace::to_string(type), common::Table::integer(box.whisker_lo),
                   common::Table::integer(box.q1), common::Table::integer(box.median),
                   common::Table::integer(box.q3),
                   common::Table::integer(box.whisker_hi)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig5_demand_boxplot");
  bench::header("Fig 5", "GPU demand distribution across workload types");
  print_cluster("Seren", bench::seren_replay().replay.jobs);
  print_cluster("Kalos", bench::kalos_replay().replay.jobs);

  const auto& kalos = bench::kalos_replay().replay.jobs;
  bench::recap("evaluation demand", "typically <= 4 GPUs",
               "median " + common::Table::integer(
                               trace::demand_of(kalos, trace::WorkloadType::kEvaluation)
                                   .median()) +
                   " GPUs (Kalos)");
  bench::recap("pretraining demand", "often > 100 GPUs",
               "median " + common::Table::integer(
                               trace::demand_of(kalos, trace::WorkloadType::kPretrain)
                                   .median()) +
                   " GPUs (Kalos)");
  const auto debug = trace::demand_of(kalos, trace::WorkloadType::kDebug);
  bench::recap("debug demand range", "wide",
               common::Table::integer(debug.min()) + " .. " +
                   common::Table::integer(debug.max()) + " GPUs");
  return bench::finish(obs_cli);
}
