// Fig 3: workload distribution by requested GPUs — (a) CDF of job count,
// (b) CDF of GPU time.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig3_gpu_demand");
  bench::header("Fig 3", "Distribution of jobs and GPU time over GPU demand");

  const auto& seren = bench::seren_replay().replay.jobs;
  const auto& kalos = bench::kalos_replay().replay.jobs;

  const auto seren_jobs = trace::demand_per_job(seren);
  const auto kalos_jobs = trace::demand_per_job(kalos);
  const auto seren_time = trace::demand_weighted_by_gpu_time(seren);
  const auto kalos_time = trace::demand_weighted_by_gpu_time(kalos);

  common::Rng rng(4);
  common::SampleStats pai_jobs;
  common::SampleStats pai_time;
  for (int i = 0; i < 60000; ++i) {
    const double demand = trace::pai_profile().sample_demand(rng);
    const double duration = trace::pai_profile().sample_duration(rng);
    pai_jobs.add(demand);
    pai_time.add_weighted(demand, demand * duration);
  }

  std::printf("(a) CDF of job count vs requested GPUs\n%s\n",
              common::plot_lines({bench::cdf_series("Seren", seren_jobs, 1, 2048),
                                  bench::cdf_series("Kalos", kalos_jobs, 1, 2048),
                                  bench::cdf_series("PAI", pai_jobs, 1, 2048)},
                                 72, 16, true, "requested GPUs", "CDF of jobs")
                  .c_str());
  std::printf("(b) CDF of GPU time vs requested GPUs\n%s\n",
              common::plot_lines({bench::cdf_series("Seren", seren_time, 1, 2048),
                                  bench::cdf_series("Kalos", kalos_time, 1, 2048),
                                  bench::cdf_series("PAI", pai_time, 1, 2048)},
                                 72, 16, true, "requested GPUs", "CDF of GPU time")
                  .c_str());

  common::Table table({"Cluster", "single-GPU jobs", ">8-GPU jobs",
                       "single-GPU GPU-time", ">=256-GPU GPU-time"});
  auto row = [&](const char* name, const common::SampleStats& jobs,
                 const common::SampleStats& time) {
    table.add_row({name, common::Table::pct(jobs.cdf(1.0)),
                   common::Table::pct(1.0 - jobs.cdf(8.0)),
                   common::Table::pct(time.cdf(1.0)),
                   common::Table::pct(1.0 - time.cdf(255.0))});
  };
  row("Seren", seren_jobs, seren_time);
  row("Kalos", kalos_jobs, kalos_time);
  row("PAI", pai_jobs, pai_time);
  std::printf("%s", table.render().c_str());

  bench::recap(">8-GPU jobs (all clusters)", "<7%",
               common::Table::pct(1.0 - kalos_jobs.cdf(8.0)) + " (Kalos)");
  bench::recap("single-GPU share of GPU time (Acme)", "<2%",
               common::Table::pct(seren_time.cdf(1.0)) + " (Seren)");
  bench::recap(">=256-GPU share of Kalos GPU time", ">96%",
               common::Table::pct(1.0 - kalos_time.cdf(255.0)));
  bench::recap("single-GPU share of PAI GPU time", "~68%",
               common::Table::pct(pai_time.cdf(1.0)));
  return bench::finish(obs_cli);
}
