// Ablation: quota reservation (Acme's design) vs a preemptive scheduler
// (Tiresias/Gandiva style). §3.1 argues "the considerable recovery overhead
// makes [preemption] not applicable to LLM workloads" — this bench
// quantifies that on the Kalos trace.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_preemption");
  bench::header("Ablation", "Quota reservation vs preemptive scheduling (Kalos)");

  const auto jobs = world::synthesize_trace(world::kalos_scenario());
  const double total_gpu_time = trace::total_gpu_time(jobs);

  struct Policy {
    const char* name;
    sched::SchedulerConfig config;
  };
  sched::SchedulerConfig reserved = sched::kalos_scheduler_config();
  sched::SchedulerConfig preemptive;
  preemptive.pretrain_reservation = 0.0;
  preemptive.allow_preemption = true;
  preemptive.preemption_overhead_seconds = 600.0;  // ckpt save + resubmit + reload
  preemptive.eval_cap_fraction = 1.0;              // no artificial caps either
  // Full classic-scheduler behaviour: fairness also evicts pretraining jobs,
  // each rollback discarding up to a checkpoint interval of 1000-GPU work.
  sched::SchedulerConfig fairness = preemptive;
  fairness.preempt_pretraining_for_fairness = true;
  fairness.fairness_wait_seconds = 1800.0;
  fairness.pretrain_rollback_cap_seconds = 1800.0;

  common::Table table({"Policy", "pretrain delay med", "eval delay med",
                       "preemptions", "wasted GPU-h", "waste share"});
  for (const auto& [name, config] :
       {Policy{"quota reservation (Acme)", reserved},
        Policy{"preemptive (best-effort victims)", preemptive},
        Policy{"preemptive + fairness (pretrain victims)", fairness}}) {
    sched::SchedulerReplay replay(cluster::kalos_spec(), config);
    const auto result = replay.replay(jobs);
    const auto pre =
        trace::queue_delays_of(result.jobs, trace::WorkloadType::kPretrain);
    const auto eval =
        trace::queue_delays_of(result.jobs, trace::WorkloadType::kEvaluation);
    table.add_row({name, common::format_duration(pre.median()),
                   common::format_duration(eval.median()),
                   std::to_string(result.preemptions),
                   common::Table::num(result.wasted_gpu_seconds / 3600.0, 0),
                   common::Table::pct(result.wasted_gpu_seconds / total_gpu_time)});
  }
  std::printf("%s", table.render().c_str());

  bench::recap("preempting best-effort only", "hurts victims, helps eval",
               "each eviction discards a victim's entire progress");
  bench::recap("preempting pretraining (fairness)", "considerable recovery overhead",
               "checkpoint rollbacks burn ~20% of cluster GPU time and the thrash "
               "delays everyone — the paper's reason to use reservations instead");
  return bench::finish(obs_cli);
}
