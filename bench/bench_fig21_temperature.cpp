// Fig 21 (Appendix A.5): CDFs of GPU core and GPU memory temperature.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig21_temperature");
  bench::header("Fig 21", "GPU core and memory temperature CDFs");

  common::Rng rng(21);
  const auto cfg = core::fleet_config_from(core::kalos_setup(), bench::kalos_replay());
  const auto metrics = telemetry::FleetSampler(cfg).sample(40000, rng);

  std::printf("%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("GPU core", metrics.gpu_core_temp_c, 25, 95),
                   bench::cdf_series_linear("GPU memory", metrics.gpu_mem_temp_c, 25, 95)},
                  72, 16, false, "temperature (C)", "CDF")
                  .c_str());

  common::Table table({"Sensor", "median", "p90", "max"});
  table.add_row({"GPU core", common::Table::num(metrics.gpu_core_temp_c.median(), 1),
                 common::Table::num(metrics.gpu_core_temp_c.quantile(0.9), 1),
                 common::Table::num(metrics.gpu_core_temp_c.max(), 1)});
  table.add_row({"GPU memory", common::Table::num(metrics.gpu_mem_temp_c.median(), 1),
                 common::Table::num(metrics.gpu_mem_temp_c.quantile(0.9), 1),
                 common::Table::num(metrics.gpu_mem_temp_c.max(), 1)});
  std::printf("%s", table.render().c_str());

  bench::recap("memory vs core temperature", "memory runs hotter",
               "+" + common::Table::num(metrics.gpu_mem_temp_c.median() -
                                            metrics.gpu_core_temp_c.median(),
                                        1) +
                   " C at the median");
  bench::recap("heavy-load GPUs above 65 C", "a visible population",
               common::Table::pct(1.0 - metrics.gpu_core_temp_c.cdf(65.0)));
  std::printf(
      "  note: July 2023 ambient pushed this population up (§5.2: NVLink/ECC\n"
      "  errors on hot 7B jobs) until the cooling was upgraded.\n");
  return bench::finish(obs_cli);
}
