// Table 3: job failure statistics — 29 reasons with occurrence counts, GPU
// demand, time-to-failure, GPU time share and time-to-restart, regenerated
// by the failure injector and diagnosed by the failure agent.
//
// Monte Carlo conversion: the headline shares and the diagnosis accuracy are
// resampled across N independent replicas (fresh injector stream each) so the
// recap carries 95% confidence intervals instead of one draw.
// Flags: --replicas N --threads K --seed S --json out.json
#include <algorithm>

#include "bench_util.h"

using namespace acme;

namespace {

struct Table3Sample {
  double infra_gpu_time_share = 0;
  double infra_count_share = 0;
  double diagnosis_accuracy = 0;
};

// One full resample of Table 3 plus a diagnosis probe pass, all randomness
// drawn from `rng` so replicas are independent and reproducible.
Table3Sample sample_table3(common::Rng& rng, const failure::FailureInjector& injector,
                           int probes) {
  Table3Sample out;
  double total_gpu_time = 0, infra_gpu_time = 0;
  int total_count = 0, infra_count = 0;
  for (const auto& spec : failure::failure_table()) {
    double gpu_time = 0;
    for (int i = 0; i < spec.count; ++i) {
      const int demand = injector.sample_demand(spec, rng);
      const double ttf = injector.sample_ttf(spec, rng) / common::kMinute;
      gpu_time += demand * ttf;
    }
    total_gpu_time += gpu_time;
    total_count += spec.count;
    if (spec.category == failure::FailureCategory::kInfrastructure) {
      infra_gpu_time += gpu_time;
      infra_count += spec.count;
    }
  }
  out.infra_gpu_time_share = infra_gpu_time / total_gpu_time;
  out.infra_count_share = static_cast<double>(infra_count) / total_count;

  diagnosis::FailureAgent agent;
  std::vector<const failure::FailureSpec*> specs;
  for (const auto& s : failure::failure_table()) specs.push_back(&s);
  agent.seed_rules(specs);
  failure::LogSynthesizer synth;
  int correct = 0;
  for (int i = 0; i < probes; ++i) {
    const auto event = injector.sample(rng);
    const auto log = synth.failed_run(*event.spec, rng);
    if (agent.diagnose(log.lines).reason == event.spec->reason) ++correct;
  }
  out.diagnosis_accuracy = static_cast<double>(correct) / probes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mc::ReplicationOptions defaults;
  defaults.replicas = 8;
  defaults.stream_label = "table3";
  const bench::BenchCli obs_cli =
      bench::parse_cli(argc, argv, "bench_table3_failures", defaults);
  const mc::McCli& cli = obs_cli.mc;
  bench::header("Table 3", "Job failure statistics over the six-month trace");

  failure::FailureInjector injector(3);
  common::Rng rng = injector.make_rng("table3");

  struct Row {
    const failure::FailureSpec* spec;
    common::SampleStats demand, ttf_min, ttr_min;
    double gpu_time_min = 0;
  };
  std::vector<Row> rows;
  double total_gpu_time = 0;
  for (const auto& spec : failure::failure_table()) {
    Row row;
    row.spec = &spec;
    for (int i = 0; i < spec.count; ++i) {
      const int demand = injector.sample_demand(spec, rng);
      const double ttf = injector.sample_ttf(spec, rng) / common::kMinute;
      const double ttr = injector.sample_ttr(spec, rng) / common::kMinute;
      row.demand.add(demand);
      row.ttf_min.add(ttf);
      row.ttr_min.add(ttr);
      row.gpu_time_min += demand * ttf;
    }
    total_gpu_time += row.gpu_time_min;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.gpu_time_min > b.gpu_time_min; });

  common::Table table({"Category", "Reason", "Num", "Demand avg", "Demand med",
                       "TTF avg(min)", "TTF med", "GPU time Total%", "TTR avg(min)",
                       "TTR med"});
  for (const auto& row : rows) {
    table.add_row({failure::to_string(row.spec->category), row.spec->reason,
                   std::to_string(row.spec->count),
                   common::Table::integer(row.demand.mean()),
                   common::Table::integer(row.demand.median()),
                   common::Table::num(row.ttf_min.mean(), 1),
                   common::Table::num(row.ttf_min.median(), 1),
                   common::Table::pct(row.gpu_time_min / total_gpu_time, 2),
                   common::Table::num(row.ttr_min.mean(), 1),
                   common::Table::num(row.ttr_min.median(), 1)});
  }
  std::printf("%s", table.render().c_str());

  // Multi-seed resampling of the headline shares + diagnosis accuracy.
  const int probes = 300;
  const auto run = mc::run_replicas<Table3Sample>(
      cli.options, [&injector, probes](common::Rng& replica_rng, std::size_t) {
        return sample_table3(replica_rng, injector, probes);
      });

  mc::MetricAggregator infra_time, infra_count, accuracy;
  mc::fold_metric(run, [](const Table3Sample& s) {
    return 100.0 * s.infra_gpu_time_share;
  }, infra_time);
  mc::fold_metric(run, [](const Table3Sample& s) {
    return 100.0 * s.infra_count_share;
  }, infra_count);
  mc::fold_metric(run, [](const Table3Sample& s) {
    return 100.0 * s.diagnosis_accuracy;
  }, accuracy);

  mc::BenchReport report("table3_failures");
  report.set_timing(run.timing, cli.options.replicas);
  report.add_metric("infra_share_of_failure_gpu_time", infra_time, "%");
  report.add_metric("infra_share_of_failure_count", infra_count, "%");
  report.add_metric("diagnosis_accuracy", accuracy, "%");

  bench::recap("infrastructure share of failure GPU time", ">82%",
               common::Table::num(infra_time.mean(), 1) + "%",
               mc::format_with_ci(infra_time.mean(), infra_time.ci95(), "%", 1));
  bench::recap("infrastructure share of failure count", "~11%",
               common::Table::num(infra_count.mean(), 1) + "%",
               mc::format_with_ci(infra_count.mean(), infra_count.ci95(), "%", 1));
  bench::recap("diagnosis accuracy on regenerated logs", "high (GPT-4-assisted)",
               common::Table::num(accuracy.mean(), 1) + "%",
               mc::format_with_ci(accuracy.mean(), accuracy.ci95(), "%", 1));
  bench::mc_footer(report, cli);
  return bench::finish(obs_cli);
}
