// Table 3: job failure statistics — 29 reasons with occurrence counts, GPU
// demand, time-to-failure, GPU time share and time-to-restart, regenerated
// by the failure injector and diagnosed by the failure agent.
#include <algorithm>

#include "bench_util.h"

using namespace acme;

int main() {
  bench::header("Table 3", "Job failure statistics over the six-month trace");

  failure::FailureInjector injector(3);
  common::Rng rng = injector.make_rng("table3");

  struct Row {
    const failure::FailureSpec* spec;
    common::SampleStats demand, ttf_min, ttr_min;
    double gpu_time_min = 0;
  };
  std::vector<Row> rows;
  double total_gpu_time = 0;
  for (const auto& spec : failure::failure_table()) {
    Row row;
    row.spec = &spec;
    for (int i = 0; i < spec.count; ++i) {
      const int demand = injector.sample_demand(spec, rng);
      const double ttf = injector.sample_ttf(spec, rng) / common::kMinute;
      const double ttr = injector.sample_ttr(spec, rng) / common::kMinute;
      row.demand.add(demand);
      row.ttf_min.add(ttf);
      row.ttr_min.add(ttr);
      row.gpu_time_min += demand * ttf;
    }
    total_gpu_time += row.gpu_time_min;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.gpu_time_min > b.gpu_time_min; });

  common::Table table({"Category", "Reason", "Num", "Demand avg", "Demand med",
                       "TTF avg(min)", "TTF med", "GPU time Total%", "TTR avg(min)",
                       "TTR med"});
  double infra_gpu_time = 0;
  int infra_count = 0, total_count = 0;
  for (const auto& row : rows) {
    table.add_row({failure::to_string(row.spec->category), row.spec->reason,
                   std::to_string(row.spec->count),
                   common::Table::integer(row.demand.mean()),
                   common::Table::integer(row.demand.median()),
                   common::Table::num(row.ttf_min.mean(), 1),
                   common::Table::num(row.ttf_min.median(), 1),
                   common::Table::pct(row.gpu_time_min / total_gpu_time, 2),
                   common::Table::num(row.ttr_min.mean(), 1),
                   common::Table::num(row.ttr_min.median(), 1)});
    total_count += row.spec->count;
    if (row.spec->category == failure::FailureCategory::kInfrastructure) {
      infra_gpu_time += row.gpu_time_min;
      infra_count += row.spec->count;
    }
  }
  std::printf("%s", table.render().c_str());

  // Diagnosis sanity over the same population.
  diagnosis::FailureAgent agent;
  std::vector<const failure::FailureSpec*> specs;
  for (const auto& s : failure::failure_table()) specs.push_back(&s);
  agent.seed_rules(specs);
  failure::LogSynthesizer synth;
  int correct = 0;
  const int probes = 300;
  for (int i = 0; i < probes; ++i) {
    const auto event = injector.sample(rng);
    const auto log = synth.failed_run(*event.spec, rng);
    if (agent.diagnose(log.lines).reason == event.spec->reason) ++correct;
  }

  bench::recap("infrastructure share of failure GPU time", ">82%",
               common::Table::pct(infra_gpu_time / total_gpu_time));
  bench::recap("infrastructure share of failure count", "~11%",
               common::Table::pct(static_cast<double>(infra_count) / total_count));
  bench::recap("diagnosis accuracy on regenerated logs", "high (GPT-4-assisted)",
               common::Table::pct(static_cast<double>(correct) / probes));
  return 0;
}
