// Fig 4: distribution of job count and GPU time across workload types.
#include "bench_util.h"

using namespace acme;

namespace {

void print_cluster(const char* name, const trace::Trace& jobs) {
  std::printf("\n-- %s --\n", name);
  const auto shares = trace::type_shares(jobs);
  common::Table table({"Workload", "Job count share", "GPU time share"});
  std::vector<std::pair<std::string, double>> count_bars, time_bars;
  for (const auto& [type, share] : shares) {
    table.add_row({trace::to_string(type),
                   common::Table::pct(share.count_fraction),
                   common::Table::pct(share.gpu_time_fraction)});
    count_bars.emplace_back(trace::to_string(type), share.count_fraction * 100);
    time_bars.emplace_back(trace::to_string(type), share.gpu_time_fraction * 100);
  }
  std::printf("%s", table.render().c_str());
  std::printf("job count share (%%):\n%s",
              common::plot_bars(count_bars, 40, "%").c_str());
  std::printf("GPU time share (%%):\n%s", common::plot_bars(time_bars, 40, "%").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig4_workload_mix");
  bench::header("Fig 4", "Workload type distribution (job count vs GPU time)");
  print_cluster("Seren", bench::seren_replay().replay.jobs);
  print_cluster("Kalos", bench::kalos_replay().replay.jobs);

  const auto seren = trace::type_shares(bench::seren_replay().replay.jobs);
  const auto kalos = trace::type_shares(bench::kalos_replay().replay.jobs);
  bench::recap("Kalos eval job share / GPU time", "92.9% / 0.8%",
               common::Table::pct(
                   kalos.at(trace::WorkloadType::kEvaluation).count_fraction) +
                   " / " +
                   common::Table::pct(
                       kalos.at(trace::WorkloadType::kEvaluation).gpu_time_fraction));
  bench::recap("Kalos pretrain job share / GPU time", "3.2% / 94.0%",
               common::Table::pct(
                   kalos.at(trace::WorkloadType::kPretrain).count_fraction) +
                   " / " +
                   common::Table::pct(
                       kalos.at(trace::WorkloadType::kPretrain).gpu_time_fraction));
  bench::recap("Seren pretrain job share / GPU time", "0.9% / 69.5%",
               common::Table::pct(
                   seren.at(trace::WorkloadType::kPretrain).count_fraction) +
                   " / " +
                   common::Table::pct(
                       seren.at(trace::WorkloadType::kPretrain).gpu_time_fraction));
  return bench::finish(obs_cli);
}
