// Ablation: why Kalos carries a NIC dedicated to storage (Table 1). When a
// 123B campaign's background checkpoint persists share the fabric with a
// burst of evaluation model loads, both suffer on Seren's single-HCA nodes;
// Kalos' dedicated storage HCA keeps them out of each other's way.
#include "bench_util.h"

using namespace acme;

namespace {

struct Outcome {
  double ckpt_persist_seconds;
  double mean_eval_load_seconds;
};

Outcome run(const storage::StorageNetworkConfig& config, int ckpt_nodes,
            int eval_trials) {
  sim::Engine engine;
  storage::StorageNetwork net(engine, config);
  const double ckpt_shard =
      parallel::checkpoint_bytes(parallel::llm_123b().params()) / ckpt_nodes;
  const double model_bytes = 2.0 * parallel::llm_7b().params();

  double ckpt_done = 0;
  int ckpt_remaining = ckpt_nodes;
  for (int n = 0; n < ckpt_nodes; ++n)
    net.start_flow(n, ckpt_shard, [&] {
      if (--ckpt_remaining == 0) ckpt_done = engine.now();
    });

  std::vector<double> eval_done(static_cast<std::size_t>(eval_trials), 0);
  for (int i = 0; i < eval_trials; ++i) {
    const int node = ckpt_nodes + i;  // precursor loads: one per eval node
    net.start_flow(node, model_bytes,
                   [&, i] { eval_done[static_cast<std::size_t>(i)] = engine.now(); });
  }
  engine.run();
  double mean_eval = 0;
  for (double d : eval_done) mean_eval += d;
  return {ckpt_done, mean_eval / eval_trials};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_storage");
  bench::header("Ablation",
                "Checkpoint persists vs evaluation loads on the storage fabric");

  const int ckpt_nodes = 128;   // a 1024-GPU campaign persisting its shards
  const int eval_trials = 64;  // precursor loads on 64 eval nodes

  // Seren: storage shares a 25 Gb/s lane per node and an 80 GB/s backend.
  const auto seren = run(storage::seren_storage_config(), ckpt_nodes, eval_trials);
  // Kalos: dedicated 200 Gb/s storage HCA per node, bigger backend.
  const auto kalos = run(storage::kalos_storage_config(), ckpt_nodes, eval_trials);
  // Counterfactual: Seren fabric but nothing else running (no checkpoint).
  const auto quiet = run(storage::seren_storage_config(), 1, eval_trials);

  common::Table table({"Fabric", "123B persist completes", "mean 7B eval load"});
  table.add_row({"Seren (shared lane), ckpt + eval burst",
                 common::format_duration(seren.ckpt_persist_seconds),
                 common::format_duration(seren.mean_eval_load_seconds)});
  table.add_row({"Seren, eval burst alone",
                 "-", common::format_duration(quiet.mean_eval_load_seconds)});
  table.add_row({"Kalos (dedicated storage HCA)",
                 common::format_duration(kalos.ckpt_persist_seconds),
                 common::format_duration(kalos.mean_eval_load_seconds)});
  std::printf("%s", table.render().c_str());

  bench::recap("eval loads under checkpoint pressure (Seren)", "interference",
               common::format_duration(quiet.mean_eval_load_seconds) + " -> " +
                   common::format_duration(seren.mean_eval_load_seconds));
  bench::recap("dedicated storage NIC (Kalos, Table 1)", "removes the contention",
               common::format_duration(kalos.mean_eval_load_seconds) + " loads, " +
                   common::format_duration(kalos.ckpt_persist_seconds) + " persist");
  return bench::finish(obs_cli);
}
