// Fig 11: GPU memory snapshot (static model states vs dynamic activations)
// over one training step for both pretraining strategies.
#include "bench_util.h"

using namespace acme;

namespace {

void print_snapshot(const char* name,
                    const parallel::PretrainExecutionModel::MemorySnapshot& snap) {
  std::printf("\n(%s)\n", name);
  const double static_gb = snap.static_bytes.front() / 1e9;
  double peak_gb = 0;
  for (double d : snap.dynamic_bytes) peak_gb = std::max(peak_gb, d / 1e9);
  std::vector<double> normalized;
  normalized.reserve(snap.dynamic_bytes.size());
  for (std::size_t i = 0; i < snap.dynamic_bytes.size(); ++i)
    normalized.push_back((snap.static_bytes[i] + snap.dynamic_bytes[i]) / 80e9);
  std::printf("  allocated memory over one step (80 GB full scale):\n  |%s|\n",
              common::sparkline(normalized, 100).c_str());
  std::printf("  static (params+grads+optimizer): %6.1f GB\n", static_gb);
  std::printf("  dynamic peak (activations):      %6.1f GB\n", peak_gb);
  std::printf("  total peak:                      %6.1f GB of 80 GB\n",
              static_gb + peak_gb);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig11_mem_snapshot");
  bench::header("Fig 11", "Memory snapshot under different pretraining strategies");
  parallel::PretrainExecutionModel model(parallel::llm_123b());
  const auto snap3d = model.memory_snapshot_3d(parallel::ThreeDConfig{});
  const auto snapz = model.memory_snapshot_hier_zero(parallel::HierZeroConfig{});
  print_snapshot("a: 3D parallelism — dynamic activations dominate", snap3d);
  print_snapshot("b: hierarchical ZeRO — static shard dominates", snapz);

  const double act3d = model.activation_bytes_3d(parallel::ThreeDConfig{});
  const double actz = model.activation_bytes_hier_zero(parallel::HierZeroConfig{});
  bench::recap("activation memory: 3D vs hier. ZeRO", "substantially higher in 3D",
               common::Table::num(act3d / 1e9, 1) + " GB vs " +
                   common::Table::num(actz / 1e9, 1) + " GB (" +
                   common::Table::num(act3d / actz, 1) + "x)");
  bench::recap("mixed-precision anatomy", "2Psi/2Psi/12Psi",
               "params " +
                   common::format_bytes(
                       parallel::mixed_precision_anatomy(parallel::llm_123b().params())
                           .param_bytes) +
                   ", optimizer " +
                   common::format_bytes(
                       parallel::mixed_precision_anatomy(parallel::llm_123b().params())
                           .optimizer_bytes));
  return bench::finish(obs_cli);
}
