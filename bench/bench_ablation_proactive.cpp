// Extension bench: proactive infrastructure validation (Anubis-style, per
// the reliability work the paper cites in §5.2) layered on top of the §6.1
// automatic-recovery pipeline.
#include "bench_util.h"

using namespace acme;

namespace {

recovery::RunnerReport run(bool proactive) {
  recovery::RunnerConfig cfg;
  cfg.model = parallel::llm_123b();
  cfg.gpus = 2048;
  cfg.auto_recovery = true;
  cfg.async_ckpt = true;
  cfg.graceful_cancel = true;
  cfg.proactive_validation = proactive;
  cfg.horizon_seconds = 30 * common::kDay;
  cfg.seed = 99;
  return recovery::FaultTolerantRunner(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_proactive");
  bench::header("Extension",
                "Proactive node validation on top of automatic recovery (123B/2048)");

  const auto without = run(false);
  const auto with = run(true);

  common::Table table({"", "reactive only", "+ proactive validation"});
  table.add_row({"hardware faults encountered", std::to_string(without.infra_failures),
                 std::to_string(with.infra_failures)});
  table.add_row({"caught before impact", "0", std::to_string(with.proactive_catches)});
  table.add_row({"iterations lost to rollback",
                 std::to_string(without.steps_lost_to_rollback),
                 std::to_string(with.steps_lost_to_rollback)});
  table.add_row({"goodput", common::Table::pct(without.goodput()),
                 common::Table::pct(with.goodput())});
  table.add_row({"final step", std::to_string(without.final_step),
                 std::to_string(with.final_step)});
  std::printf("%s", table.render().c_str());

  bench::recap("proactive catches", "a scheduled drain beats a crash",
               std::to_string(with.proactive_catches) + " faults defused; " +
                   std::to_string(without.steps_lost_to_rollback -
                                  with.steps_lost_to_rollback) +
                   " fewer steps lost");
  return bench::finish(obs_cli);
}
