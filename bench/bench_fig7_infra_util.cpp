// Fig 7: infrastructure utilization CDFs — SM/TC activity, host & GPU memory
// footprints, CPU utilization, and IB bandwidth.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig7_infra_util");
  bench::header("Fig 7", "Infrastructure utilization (monitor-data CDFs)");

  common::Rng rng(7);
  const auto seren_cfg =
      core::fleet_config_from(core::seren_setup(), bench::seren_replay());
  const auto kalos_cfg =
      core::fleet_config_from(core::kalos_setup(), bench::kalos_replay());
  const auto seren = telemetry::FleetSampler(seren_cfg).sample(40000, rng);
  const auto kalos = telemetry::FleetSampler(kalos_cfg).sample(40000, rng);

  std::printf("(a) SM / TC activity\n%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("Seren SM", seren.sm_activity, 0, 1),
                   bench::cdf_series_linear("Kalos SM", kalos.sm_activity, 0, 1),
                   bench::cdf_series_linear("Seren TC", seren.tc_activity, 0, 1),
                   bench::cdf_series_linear("Kalos TC", kalos.tc_activity, 0, 1)},
                  72, 14, false, "activity fraction", "CDF")
                  .c_str());
  std::printf(
      "(b) memory footprints\n%s\n",
      common::plot_lines(
          {bench::cdf_series_linear("Seren GPU mem (GB)", seren.gpu_mem_gb, 0, 80),
           bench::cdf_series_linear("Kalos GPU mem (GB)", kalos.gpu_mem_gb, 0, 80)},
          72, 14, false, "GPU memory (GB)", "CDF")
          .c_str());
  std::printf("%s\n",
              common::plot_lines({bench::cdf_series_linear(
                                      "Seren host mem", seren.host_mem_frac, 0, 1),
                                  bench::cdf_series_linear(
                                      "Kalos host mem", kalos.host_mem_frac, 0, 1)},
                                 72, 12, false, "host memory fraction", "CDF")
                  .c_str());
  std::printf("(c) CPU utilization\n%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("Seren", seren.cpu_util, 0, 1),
                   bench::cdf_series_linear("Kalos", kalos.cpu_util, 0, 1)},
                  72, 12, false, "CPU utilization", "CDF")
                  .c_str());
  std::printf("(d) IB bandwidth (Seren)\n%s\n",
              common::plot_lines(
                  {bench::cdf_series_linear("send", seren.ib_send_frac, 0, 1),
                   bench::cdf_series_linear("recv", seren.ib_recv_frac, 0, 1)},
                  72, 12, false, "fraction of peak NIC bandwidth", "CDF")
                  .c_str());

  bench::recap("median SM activity", "~40%",
               common::Table::pct(kalos.sm_activity.median()) + " (Kalos)");
  bench::recap("Kalos GPUs above 60 GB (75%) memory", "~50%",
               common::Table::pct(1.0 - kalos.gpu_mem_gb.cdf(60.0)));
  bench::recap("host memory utilization", "<50%",
               "p90 " + common::Table::pct(kalos.host_mem_frac.quantile(0.9)));
  bench::recap("CPU utilization", "low (16 CPUs/GPU)",
               "median " + common::Table::pct(seren.cpu_util.median()));
  bench::recap("IB NICs idle share of time", ">60%",
               common::Table::pct(seren.ib_send_frac.cdf(0.005)));
  bench::recap("IB active bw above 25% of peak", "rare",
               common::Table::pct(1.0 - seren.ib_send_frac.cdf(0.25)));
  return bench::finish(obs_cli);
}
