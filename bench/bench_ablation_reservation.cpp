// Ablation: how the pretraining reservation fraction trades pretraining
// queuing delay against best-effort (evaluation) delay and occupancy —
// the core tension behind the paper's Fig 6 finding.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_ablation_reservation");
  bench::header("Ablation", "Pretraining reservation fraction sweep (Seren, 1/8 scale)");

  const auto jobs = world::synthesize_trace(world::seren_scenario());

  common::Table table({"Reservation", "pretrain delay med", "pretrain delay p95",
                       "eval delay med", "SFT delay med", "unstarted",
                       "occupancy"});
  for (double reservation : {0.50, 0.60, 0.68, 0.80, 0.88}) {
    sched::SchedulerConfig config = sched::seren_scheduler_config();
    config.pretrain_reservation = reservation;
    sched::SchedulerReplay replay(cluster::seren_spec(), config);
    const auto result = replay.replay(jobs, 1800.0);
    double busy = 0, total = 0;
    for (const auto& s : result.occupancy) {
      busy += s.busy_gpus;
      total += s.total_gpus;
    }
    const auto pre = trace::queue_delays_of(result.jobs, trace::WorkloadType::kPretrain);
    const auto eval =
        trace::queue_delays_of(result.jobs, trace::WorkloadType::kEvaluation);
    const auto sft = trace::queue_delays_of(result.jobs, trace::WorkloadType::kSFT);
    table.add_row({common::Table::pct(reservation, 0),
                   common::format_duration(pre.median()),
                   common::format_duration(pre.quantile(0.95)),
                   common::format_duration(eval.median()),
                   common::format_duration(sft.median()),
                   std::to_string(result.unstarted),
                   common::Table::pct(total > 0 ? busy / total : 0)});
  }
  std::printf("%s", table.render().c_str());

  bench::recap("operating point", "reserve the campaign footprint (+ slack)",
               "below ~68% the campaigns spill and queue; above it best-effort "
               "delays grow with no pretraining benefit");
  return bench::finish(obs_cli);
}
