// Fig 17 (Appendix A.1): final job statuses by quantity and GPU resources.
#include "bench_util.h"

using namespace acme;

namespace {

void print_cluster(const char* name, const trace::Trace& jobs) {
  std::printf("\n-- %s --\n", name);
  const auto shares = trace::status_shares(jobs);
  common::Table table({"Status", "Job quantity", "GPU resources"});
  for (const auto& [status, share] : shares)
    table.add_row({trace::to_string(status), common::Table::pct(share.count_fraction),
                   common::Table::pct(share.gpu_time_fraction)});
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig17_final_statuses");
  bench::header("Fig 17", "Final statuses of jobs (quantity vs GPU resources)");
  print_cluster("Seren", bench::seren_replay().replay.jobs);
  print_cluster("Kalos", bench::kalos_replay().replay.jobs);

  const auto seren = trace::status_shares(bench::seren_replay().replay.jobs);
  bench::recap("failed jobs (quantity)", "~40%",
               common::Table::pct(
                   seren.at(trace::JobStatus::kFailed).count_fraction));
  bench::recap("completed jobs' GPU resources", "20~30%",
               common::Table::pct(
                   seren.at(trace::JobStatus::kCompleted).gpu_time_fraction));
  bench::recap("canceled jobs: quantity / resources", "~7% / >60%",
               common::Table::pct(
                   seren.at(trace::JobStatus::kCanceled).count_fraction) +
                   " / " +
                   common::Table::pct(
                       seren.at(trace::JobStatus::kCanceled).gpu_time_fraction));
  return bench::finish(obs_cli);
}
