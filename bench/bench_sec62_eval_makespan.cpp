// §6.2 / Fig 16 (right): evaluation makespan of the 63-dataset 7B sweep —
// per-dataset baseline trials vs the decoupled trial coordinator.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_sec62_eval_makespan");
  bench::header("Sec 6.2", "Trial coordinator: evaluation makespan (63 datasets, 7B)");

  common::Table table({"Resources", "Baseline makespan", "Coordinator makespan",
                       "Speedup", "Baseline GPU idle", "Coordinator GPU idle"});
  double s1 = 0, s4 = 0;
  for (int nodes : {1, 4}) {
    const auto base =
        evalsched::TrialCoordinator(evalsched::TrialCoordinator::baseline_config(nodes))
            .run();
    const auto ours = evalsched::TrialCoordinator(
                          evalsched::TrialCoordinator::coordinator_config(nodes))
                          .run();
    const double speedup = base.makespan / ours.makespan;
    (nodes == 1 ? s1 : s4) = speedup;
    table.add_row({std::to_string(nodes) + " node(s)",
                   common::format_duration(base.makespan),
                   common::format_duration(ours.makespan),
                   common::Table::num(speedup, 2) + "x",
                   common::Table::pct(base.gpu_idle_fraction()),
                   common::Table::pct(ours.gpu_idle_fraction())});
  }
  std::printf("%s", table.render().c_str());

  // Technique ablation at 4 nodes.
  auto with_flags = [](bool load, bool metric, bool packing) {
    evalsched::EvalConfig c = evalsched::TrialCoordinator::baseline_config(4);
    c.decouple_loading = load;
    c.decouple_metric = metric;
    c.elastic_packing = packing;
    c.cache_tokenized = packing;
    return evalsched::TrialCoordinator(c).run().makespan;
  };
  common::Table ablation({"Configuration", "Makespan (4 nodes)"});
  ablation.add_row({"baseline (per-dataset trials)",
                    common::format_duration(with_flags(false, false, false))});
  ablation.add_row({"+ decoupled model loading",
                    common::format_duration(with_flags(true, false, false))});
  ablation.add_row({"+ decoupled metric computation",
                    common::format_duration(with_flags(true, true, false))});
  ablation.add_row({"+ prior-based elastic packing/splitting",
                    common::format_duration(with_flags(true, true, true))});
  std::printf("\nablation:\n%s", ablation.render().c_str());

  bench::recap("makespan reduction, 1 node", "1.3x",
               common::Table::num(s1, 2) + "x");
  bench::recap("makespan reduction, 4 nodes", "1.8x",
               common::Table::num(s4, 2) + "x");
  return bench::finish(obs_cli);
}
