// Fig 13: GPU SM utilization over an entire evaluation trial on HumanEval
// with a 7B model — model loading / preprocessing, inference, then an idle
// metric-computation tail.
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig13_eval_timeline");
  bench::header("Fig 13", "Evaluation workload anatomy: HumanEval on a 7B model");

  evalsched::TrialCoordinator coordinator(
      evalsched::TrialCoordinator::baseline_config(1));
  std::vector<evalsched::Dataset> humaneval;
  for (const auto& d : evalsched::dataset_suite())
    if (d.name == "humaneval") humaneval.push_back(d);
  const auto report = coordinator.run(humaneval);

  double total = 0;
  for (const auto& s : report.humaneval_timeline) total += s.duration;

  common::Table table({"Stage", "Start (s)", "Duration (s)", "Share", "GPU state"});
  double pre_infer = 0, infer = 0, metric = 0;
  std::vector<double> sm_timeline;
  for (const auto& s : report.humaneval_timeline) {
    const bool gpu_active = s.stage == "inference";
    table.add_row({s.stage, common::Table::num(s.start, 1),
                   common::Table::num(s.duration, 1),
                   common::Table::pct(s.duration / total),
                   gpu_active ? "busy (generation)" : "idle"});
    if (s.stage == "inference") infer += s.duration;
    else if (s.stage == "metric") metric += s.duration;
    else pre_infer += s.duration;
    const double level = gpu_active ? 0.32 : 0.01;
    for (int i = 0; i < static_cast<int>(s.duration); ++i)
      sm_timeline.push_back(level);
  }
  std::printf("%s", table.render().c_str());
  std::printf("SM utilization over the trial (1 s buckets):\n  |%s|\n",
              common::sparkline(sm_timeline, 100).c_str());

  bench::recap("model loading + preprocessing share", "29.5%",
               common::Table::pct(pre_infer / total));
  bench::recap("GPU inference share", "~51%", common::Table::pct(infer / total));
  bench::recap("idle metric-computation tail", "19.0% (42 s)",
               common::Table::pct(metric / total) + " (" +
                   common::Table::num(metric, 0) + " s)");
  std::printf(
      "  note: §6.2 decouples the metric stage to a CPU job and pre-stages the\n"
      "  model in shared memory, reclaiming both idle segments.\n");
  return bench::finish(obs_cli);
}
