// Fig 14: training progress of two LLM campaigns under manual recovery — the
// early 104B attempt (sync checkpoints, long intervals, hard cancels) vs the
// 123B campaign a month later (short async intervals, graceful termination).
#include "bench_util.h"

using namespace acme;

namespace {

recovery::RunnerReport run_campaign(const parallel::TransformerConfig& model,
                                    double interval, bool async_ckpt,
                                    bool graceful, std::uint64_t seed) {
  recovery::RunnerConfig cfg;
  cfg.model = model;
  cfg.gpus = 1024;
  cfg.step_seconds = 11.0;
  cfg.ckpt_interval_seconds = interval;
  cfg.async_ckpt = async_ckpt;
  cfg.auto_recovery = false;  // the Fig 14 era: all recovery was manual
  cfg.graceful_cancel = graceful;
  cfg.horizon_seconds = 21 * common::kDay;
  cfg.seed = seed;
  return recovery::FaultTolerantRunner(cfg).run();
}

void print_progress(const char* name, const recovery::RunnerReport& report) {
  std::printf("\n-- %s --\n", name);
  // Progress curve: iterations vs wall-clock days, as a sparkline normalized
  // to the final step count.
  const double max_step =
      static_cast<double>(std::max<std::uint64_t>(report.final_step, 1));
  std::vector<double> curve;
  const double horizon = report.progress.back().first;
  std::size_t cursor = 0;
  for (int i = 0; i < 120; ++i) {
    const double t = horizon * i / 119.0;
    while (cursor + 1 < report.progress.size() &&
           report.progress[cursor + 1].first <= t)
      ++cursor;
    curve.push_back(static_cast<double>(report.progress[cursor].second) / max_step);
  }
  std::printf("  iterations vs time: |%s|\n", common::sparkline(curve, 120).c_str());
  std::printf("  final step %llu | failures %d | manual restarts %d | rollback loss "
              "%llu steps | goodput %.1f%%\n",
              static_cast<unsigned long long>(report.final_step), report.failures,
              report.manual_interventions,
              static_cast<unsigned long long>(report.steps_lost_to_rollback),
              report.goodput() * 100);
  int night_restarts = 0;
  for (const auto& e : report.events)
    if (e.kind == "failure" && e.stall_seconds > 2 * common::kHour) ++night_restarts;
  std::printf("  restarts stalled > 2 h (on-call asleep): %d\n", night_restarts);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig14_training_progress");
  bench::header("Fig 14", "Training progress with manual recovery (104B vs 123B)");

  const auto b104 =
      run_campaign(parallel::llm_104b(), 4 * common::kHour, false, false, 104);
  const auto b123 =
      run_campaign(parallel::llm_123b(), 30 * common::kMinute, true, true, 123);
  print_progress("104B (early framework: 4 h sync checkpoints, hard cancels)", b104);
  print_progress("123B (one month later: 30 min async checkpoints, graceful stop)",
                 b123);

  const double loss104 =
      static_cast<double>(b104.steps_lost_to_rollback) /
      std::max<double>(1.0, static_cast<double>(b104.final_step));
  const double loss123 =
      static_cast<double>(b123.steps_lost_to_rollback) /
      std::max<double>(1.0, static_cast<double>(b123.final_step));
  bench::recap("rollback loss: 104B vs 123B", "123B markedly more stable",
               common::Table::pct(loss104) + " vs " + common::Table::pct(loss123) +
                   " of final progress");
  bench::recap("goodput: 104B vs 123B", "123B higher",
               common::Table::pct(b104.goodput()) + " vs " +
                   common::Table::pct(b123.goodput()));
  return bench::finish(obs_cli);
}
