// End-to-end world replay: the whole datacenter on one discrete-event spine.
//
// Runs a named (or JSON-file) ScenarioSpec through acme::world — six-month
// trace synthesis, quota scheduler, live Table 3 failure injection, §6.1
// recovery pricing, fleet telemetry — and reports how much goodput the
// failures cost, against the paper's §5.2/§6.1 claims. The Monte Carlo
// replication re-seeds the full scenario per replica.
// Flags: --scenario NAME|FILE.json --replicas N --threads K --workers W
//        --seed S --json out.json --trace-out t.json --metrics-out m.prom
//        --snapshot-at T --snapshot-out snap.bin | --restore snap.bin
// --workers drains each replay through the parallel window runtime
// (DESIGN.md §13); reports are byte-identical at any width.
#include <fstream>
#include <sstream>

#include "bench_util.h"

using namespace acme;

namespace {

world::ScenarioSpec resolve_scenario(const std::string& arg) {
  if (auto named = world::find_scenario(arg)) return *named;
  std::ifstream in(arg);
  if (!in) {
    std::fprintf(stderr,
                 "bench_world_endtoend: --scenario \"%s\" is neither a "
                 "registered scenario (", arg.c_str());
    for (const auto& name : world::scenario_names())
      std::fprintf(stderr, "%s ", name.c_str());
    std::fprintf(stderr, ") nor a readable JSON file\n");
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto spec = world::scenario_from_json(buf.str(), &error);
  if (!spec) {
    std::fprintf(stderr, "bench_world_endtoend: bad scenario file %s: %s\n",
                 arg.c_str(), error.c_str());
    std::exit(2);
  }
  return *spec;
}

}  // namespace

int main(int argc, char** argv) {
  mc::ReplicationOptions defaults;
  defaults.replicas = 4;
  defaults.stream_label = "world";
  std::string scenario_arg = "seren";

  common::FlagSet flags("bench_world_endtoend");
  bench::BenchCli obs_cli;
  flags.add("--trace-out", &obs_cli.trace_path,
            "write a Chrome trace-event JSON of this run (Perfetto-loadable)");
  flags.add("--metrics-out", &obs_cli.metrics_path,
            "write the self-observability metrics as Prometheus text");
  flags.add("--scenario", &scenario_arg,
            "registered scenario name or path to a ScenarioSpec JSON file");
  obs_cli.mc.options = defaults;
  mc::add_mc_flags(flags, obs_cli.mc);
  bench::SnapshotCli snap_cli;
  bench::add_snapshot_flags(flags, snap_cli);
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_world_endtoend: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  const std::string snap_error = bench::snapshot_cli_error(snap_cli);
  if (!snap_error.empty()) {
    std::fprintf(stderr, "bench_world_endtoend: %s\n%s", snap_error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (obs_cli.mc.options.replicas == 0) obs_cli.mc.options.replicas = 1;
  if (!obs_cli.trace_path.empty() || !obs_cli.metrics_path.empty())
    obs::set_enabled(true);
  const mc::McCli& cli = obs_cli.mc;

  // With --restore, the snapshot itself is the source of truth for the
  // scenario: the spec is recovered from its "world.spec" section.
  const world::ScenarioSpec spec = snap_cli.restoring()
                                       ? world::snapshot_spec(snap_cli.restore_path)
                                       : resolve_scenario(scenario_arg);
  bench::header("World", "Integrated end-to-end replay on one event spine");
  std::printf("scenario: %s\n\n", spec.to_json().c_str());

  // Canonical single run at the scenario's own seed (snapshot-aware: the
  // digest is identical whether the run is straight, paused-and-saved, or
  // resumed from a file — and, with --workers, however wide the drain pool
  // is).
  const world::WorldReport report =
      bench::run_world_snapshot_aware(spec, snap_cli, cli.options.workers);
  const double trace_days = report.replay.makespan / common::kDay;
  common::Table table({"metric", "value"});
  table.add_row({"makespan", common::format_duration(report.replay.makespan)});
  table.add_row({"occupancy", common::Table::pct(report.busy_fraction)});
  table.add_row({"failures injected", std::to_string(report.failures_injected)});
  table.add_row({"  hit an idle instant", std::to_string(report.failures_no_victim)});
  table.add_row({"  infrastructure", std::to_string(report.infra_failures)});
  table.add_row({"two-round localizations", std::to_string(report.localizations)});
  table.add_row({"manual recoveries", std::to_string(report.manual_recoveries)});
  table.add_row({"recovery stall (sum)",
                 common::format_duration(report.recovery_stall_seconds)});
  table.add_row({"lost work (ckpt-bounded)",
                 common::Table::num(report.lost_work_gpu_seconds / common::kDay, 1) +
                     " GPU-days"});
  table.add_row({"recovery-idled GPUs",
                 common::Table::num(report.stall_gpu_seconds / common::kDay, 1) +
                     " GPU-days"});
  table.add_row({"goodput", common::Table::pct(report.goodput)});
  table.add_row({"pretrain delay median",
                 common::format_duration(report.pretrain_queue_delay.median())});
  table.add_row({"eval delay median",
                 common::format_duration(report.eval_queue_delay.median())});
  if (report.served) {
    const serve::FleetReport& s = report.serve;
    table.add_row({"serve offered",
                   std::to_string(s.offered) + " requests (" +
                       common::Table::num(s.offered_rps(), 1) + " rps)"});
    table.add_row({"serve completed", std::to_string(s.completed)});
    table.add_row({"  rejected / failed", std::to_string(s.rejected) + " / " +
                                              std::to_string(s.failed)});
    table.add_row({"serve replica kills",
                   std::to_string(s.replica_kills) + " (" +
                       std::to_string(s.rewarms) + " re-warmed)"});
    table.add_row({"serve SLO attainment",
                   common::Table::pct(s.slo_attainment())});
    table.add_row({"serve goodput",
                   common::Table::num(s.goodput_rps(), 1) + " rps"});
    table.add_row({"serve ttft p50/p99",
                   common::Table::num(s.ttft_p50, 3) + " / " +
                       common::Table::num(s.ttft_p99, 3) + " s"});
    table.add_row({"serve e2e p99",
                   common::Table::num(s.e2e_p99, 2) + " s"});
  }
  std::printf("%s", table.render().c_str());

  const double lost_total =
      report.lost_work_gpu_seconds + report.stall_gpu_seconds;
  bench::recap(
      "goodput lost to failures",
      "§6.1: ckpt interval bounds rollback; waste stays single-digit %",
      common::Table::pct(1.0 - report.goodput) + " of delivered GPU time");
  bench::recap(
      "infra share of failure GPU time", "82% (§5.2, Table 3)",
      common::Table::pct(lost_total > 0 ? report.infra_lost_gpu_seconds / lost_total
                                        : 0));
  bench::recap("failure cadence",
               "§5.2: frequent interruptions on large pretraining",
               common::Table::num(
                   trace_days > 0 ? report.failures_injected / trace_days : 0, 2) +
                   " kills/trace-day");
  if (report.served)
    bench::recap("serve SLO goodput",
                 "capacity loss shows up as attainment, not just rate",
                 common::Table::pct(report.serve.slo_attainment()) + " SLO, " +
                     common::Table::num(report.serve.goodput_rps(), 1) +
                     " rps goodput");

  // Monte Carlo replication: every replica re-seeds trace synthesis, failure
  // arrivals and fleet sampling from its forked stream.
  const auto run = world::run_world_mc(spec, cli.options);
  mc::MetricAggregator goodput, kills_per_day, lost_gpu_days, eval_delay_h;
  mc::fold_metric(run, [](const world::WorldReport& r) { return r.goodput; },
                  goodput);
  mc::fold_metric(run, [](const world::WorldReport& r) {
    const double days = r.replay.makespan / common::kDay;
    return days > 0 ? r.failures_injected / days : 0.0;
  }, kills_per_day);
  mc::fold_metric(run, [](const world::WorldReport& r) {
    return (r.lost_work_gpu_seconds + r.stall_gpu_seconds) / common::kDay;
  }, lost_gpu_days);
  mc::fold_metric(run, [](const world::WorldReport& r) {
    return r.eval_queue_delay.empty() ? 0.0
                                      : r.eval_queue_delay.median() / common::kHour;
  }, eval_delay_h);

  mc::BenchReport mc_report("world_endtoend");
  mc_report.set_timing(run.timing, cli.options.replicas);
  mc_report.add_metric("goodput", goodput);
  mc_report.add_metric("failure_kills_per_day", kills_per_day, "1/d");
  mc_report.add_metric("failure_lost_gpu_days", lost_gpu_days, "GPU-d");
  mc_report.add_metric("eval_delay_median", eval_delay_h, "h");
  if (spec.serving()) {
    mc::MetricAggregator serve_goodput, serve_slo, serve_ttft_p99;
    mc::fold_metric(run, [](const world::WorldReport& r) {
      return r.serve.goodput_rps();
    }, serve_goodput);
    mc::fold_metric(run, [](const world::WorldReport& r) {
      return r.serve.slo_attainment();
    }, serve_slo);
    mc::fold_metric(run, [](const world::WorldReport& r) {
      return r.serve.ttft_p99;
    }, serve_ttft_p99);
    mc_report.add_metric("serve_goodput_rps", serve_goodput, "1/s");
    mc_report.add_metric("serve_slo_attainment", serve_slo);
    mc_report.add_metric("serve_ttft_p99", serve_ttft_p99, "s");
  }
  bench::mc_footer(mc_report, cli);

  return bench::finish(obs_cli);
}
