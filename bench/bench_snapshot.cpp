// Snapshot overhead: what save+restore costs against the run it freezes.
//
// The snapshot subsystem only earns its keep if pausing a world is cheap
// relative to simulating it: the fast-forward workflow (save once, branch N
// futures) assumes save+restore is noise next to the replay. The yardstick
// is the repo's canonical seren end-to-end benchmark workload — the same
// `--replicas 4 --threads 1` Monte Carlo set bench_world_endtoend has
// reported as "seren end-to-end" since BENCH_5.json — timed here by the
// same binary that times the round-trip, so the gate compares numbers from
// one process on one machine. Each repetition also replays the
// interrupted-at-midpoint world to completion and asserts digest equality
// with the uninterrupted run, so a perf win that breaks determinism can't
// sneak through. One untimed warm-up round-trip precedes the measured reps
// (allocator pages and CRC tables are process-lifetime state; see the
// BENCH_6.json note on cold first runs).
//
// Gate: median save+restore < 5% of the median end-to-end workload wall
// time (exit 1 past the gate).
//
// Flags: --scenario NAME --scale S --reps N --replicas R --workers W
//        --json out.json
// --workers > 1 drains both the yardstick replicas and the resumed worlds
// through the parallel window runtime (DESIGN.md §13); the digest check
// then also pins restore+parallel-resume against the straight serial run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "mc/replication.h"
#include "snap/format.h"

using namespace acme;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

constexpr double kForever = std::numeric_limits<double>::infinity();

// One save + restore at the straight run's midpoint. Returns the wall
// seconds spent inside save/finish/restore only (the simulated work on
// either side is the same replay either way) and leaves the resumed world
// in `resumed` for the digest check.
double snapshot_roundtrip(const world::ScenarioSpec& spec, double mid,
                          std::size_t* out_bytes, world::World& resumed) {
  world::World a(spec);
  a.run_until(mid);
  auto t0 = std::chrono::steady_clock::now();
  snap::SnapshotWriter w;
  a.save(w);
  std::string bytes = w.finish();
  double overhead = seconds_since(t0);
  *out_bytes = bytes.size();
  t0 = std::chrono::steady_clock::now();
  snap::SnapshotReader r(std::move(bytes));
  resumed.restore(r);
  overhead += seconds_since(t0);
  return overhead;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "seren";
  double scale = 0;  // 0 = the preset's own scale
  std::uint64_t reps = 3;
  std::uint64_t replicas = 4;
  std::uint64_t workers = 1;
  std::string json_path;

  common::FlagSet flags("bench_snapshot");
  flags.add("--scenario", &scenario, "registered scenario to replay");
  flags.add("--scale", &scale, "override the preset's trace scale (0 = keep)");
  flags.add("--reps", &reps, "repetitions; the median is reported");
  flags.add("--replicas", &replicas,
            "MC replicas in the end-to-end yardstick workload (the "
            "bench_world_endtoend canonical row uses 4)");
  flags.add("--workers", &workers,
            "window-drain workers for the yardstick and the resumed worlds "
            "(1 = serial event drain)");
  flags.add("--json", &json_path,
            "write a BENCH-format results JSON for tools/bench_compare.py");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "bench_snapshot: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  if (reps == 0) reps = 1;
  if (replicas == 0) replicas = 1;
  const auto preset = world::find_scenario(scenario);
  if (!preset) {
    std::fprintf(stderr, "bench_snapshot: unknown scenario \"%s\"\n",
                 scenario.c_str());
    return 2;
  }
  world::ScenarioSpec spec = *preset;
  if (scale > 0) spec.scale = scale;

  mc::ReplicationOptions mc_options;
  mc_options.replicas = static_cast<std::size_t>(replicas);
  mc_options.threads = 1;
  mc_options.workers = static_cast<std::size_t>(workers == 0 ? 1 : workers);
  mc_options.stream_label = "world";

  std::optional<task::Pool> pool;
  if (mc_options.workers > 1) pool.emplace(mc_options.workers);

  bench::header("Snapshot", "World save/restore overhead vs the replay");
  std::printf("scenario %s, scale %.3g, %llu repetitions, %llu-replica "
              "end-to-end yardstick\n",
              spec.name.c_str(), spec.scale,
              static_cast<unsigned long long>(reps),
              static_cast<unsigned long long>(replicas));

  // Reference run: oracle digest + the midpoint every round-trip freezes at.
  const world::WorldReport straight = world::run_world(spec);
  const double mid = straight.replay.makespan * 0.5;

  // Warm-up round-trip, untimed (first-touch pages, CRC dispatch, malloc
  // arena growth are process-lifetime costs the steady state never repays).
  {
    std::size_t bytes = 0;
    world::World warm(spec);
    snapshot_roundtrip(spec, mid, &bytes, warm);
  }

  std::vector<double> endtoend_walls, roundtrip_walls;
  std::size_t snapshot_bytes = 0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    world::run_world_mc(spec, mc_options);
    endtoend_walls.push_back(seconds_since(t0));

    world::World resumed(spec);
    roundtrip_walls.push_back(
        snapshot_roundtrip(spec, mid, &snapshot_bytes, resumed));
    world::WorldReport resumed_report = [&] {
      if (pool) return resumed.run_parallel(*pool);
      resumed.run_until(kForever);
      return resumed.finish();
    }();
    if (resumed_report.digest() != straight.digest()) {
      std::fprintf(stderr,
                   "bench_snapshot: digest divergence on rep %llu — the "
                   "snapshot path is not byte-identical\n",
                   static_cast<unsigned long long>(rep));
      return 1;
    }
  }

  const double endtoend_s = median(endtoend_walls);
  const double roundtrip_s = median(roundtrip_walls);
  const double ratio = endtoend_s > 0 ? roundtrip_s / endtoend_s : 0;

  common::Table table({"metric", "value"});
  table.add_row({"end-to-end workload (median)",
                 common::Table::num(endtoend_s * 1e3, 1) + " ms"});
  table.add_row({"save+restore (median)",
                 common::Table::num(roundtrip_s * 1e3, 2) + " ms"});
  table.add_row({"snapshot size",
                 common::Table::num(snapshot_bytes / 1024.0, 1) + " KiB"});
  table.add_row({"overhead ratio", common::Table::pct(ratio)});
  std::printf("%s", table.render().c_str());
  bench::recap("snapshot round-trip overhead",
               "< 5% of the seren end-to-end workload",
               common::Table::pct(ratio));
  std::printf("  digests: straight == save/restore/resume on all %llu reps\n",
              static_cast<unsigned long long>(reps));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"workers\": " << mc_options.workers << ",\n  \"results\": {\n"
        << "    \"BM_SnapshotRoundTrip\": { \"seconds\": " << roundtrip_s
        << " },\n"
        << "    \"BM_SnapshotRoundTrip/seren_endtoend\": { \"seconds\": "
        << endtoend_s << " }\n  }\n}\n";
    std::printf("[json] results written to %s\n", json_path.c_str());
  }

  if (ratio >= 0.05) {
    std::fprintf(stderr,
                 "bench_snapshot: save+restore is %.1f%% of the end-to-end "
                 "workload (gate: < 5%%)\n",
                 ratio * 100);
    return 1;
  }
  return 0;
}
