// Fig 18 (Appendix A.2): host memory breakdown on a Seren node running a
// pretraining job (123 GB active of 1 TB).
#include "bench_util.h"

using namespace acme;

int main(int argc, char** argv) {
  const bench::BenchCli obs_cli = bench::parse_cli(argc, argv, "bench_fig18_host_memory");
  bench::header("Fig 18", "Host memory breakdown on a pretraining node (Seren)");

  // Component accounting mirroring the paper's measured node: training
  // processes (per-rank runtime + pinned staging buffers for asynchronous
  // checkpointing, sized from the checkpoint shard math), dataloaders with
  // on-the-fly loading, TensorBoard, the parallel-FS client daemon, and
  // assorted system services.
  ckpt::CheckpointTimingModel timing;
  const double params = parallel::llm_123b().params();
  const int world = 1024;
  const double ckpt_stage_gb =
      timing.bytes_per_gpu(params, world) * 8 / 1e9;  // 8 ranks on the node

  struct Item {
    const char* name;
    double gb;
  };
  const Item items[] = {
      {"training processes (8 ranks)", 48.0},
      {"async-checkpoint staging buffers", ckpt_stage_gb},
      {"dataloader (on-the-fly loading)", 7.2},
      {"distributed-FS client daemon + cache", 45.3},
      {"TensorBoard", 6.5},
      {"Prometheus/DCGM/Slurm/system", 0.6},
  };
  double total = 0;
  common::Table table({"Component", "Resident memory", "Share of 1 TB"});
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& item : items) {
    total += item.gb;
    table.add_row({item.name, common::Table::num(item.gb, 1) + " GB",
                   common::Table::pct(item.gb / 1024.0)});
    bars.emplace_back(item.name, item.gb);
  }
  table.add_row({"TOTAL active", common::Table::num(total, 1) + " GB",
                 common::Table::pct(total / 1024.0)});
  std::printf("%s", table.render().c_str());
  std::printf("%s", common::plot_bars(bars, 44, "GB").c_str());

  bench::recap("active host memory on a 1 TB node", "123 GB",
               common::Table::num(total, 0) + " GB");
  bench::recap("headroom usable for fault tolerance", "substantial",
               common::Table::num(1024.0 - total, 0) + " GB free");
  std::printf(
      "  note: this headroom is exactly what §6.1's asynchronous checkpointing\n"
      "  exploits — several TB-scale snapshots fit in host memory per node.\n");
  return bench::finish(obs_cli);
}
