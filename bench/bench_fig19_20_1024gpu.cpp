// Fig 19 & 20 (Appendix A.4): the 123B profiling repeated at 1024 GPUs —
// SM-utilization timelines and memory snapshots mirror the 2048-GPU results.
#include "bench_util.h"

using namespace acme;

int main() {
  bench::header("Fig 19/20", "123B pretraining profiled at 1024 GPUs (A.4)");

  parallel::PretrainExecutionModel model(parallel::llm_123b());
  parallel::ThreeDConfig v1_small;
  v1_small.world = 1024;
  parallel::HierZeroConfig v2_small;
  v2_small.world = 1024;
  parallel::ThreeDConfig v1_big;  // 2048 for comparison
  parallel::HierZeroConfig v2_big;

  const auto s1 = model.step_3d(v1_small);
  const auto s2 = model.step_hier_zero(v2_small);
  const auto b1 = model.step_3d(v1_big);
  const auto b2 = model.step_hier_zero(v2_big);

  common::Rng rng(19);
  std::printf("Fig 19 — SM utilization at 1024 GPUs (1 ms samples):\n");
  std::printf("  V1: |%s|\n",
              common::sparkline(s1.sample(0.001, 2 * s1.step_time(), rng), 100).c_str());
  std::printf("  V2: |%s|\n\n",
              common::sparkline(s2.sample(0.001, 2 * s2.step_time(), rng), 100).c_str());

  common::Table table({"World", "V1 step (s)", "V2 step (s)", "V1/V2", "V1 mean SM",
                       "V2 mean SM"});
  table.add_row({"1024", common::Table::num(s1.step_time(), 2),
                 common::Table::num(s2.step_time(), 2),
                 common::Table::num(s1.step_time() / s2.step_time(), 2),
                 common::Table::pct(s1.mean_sm()), common::Table::pct(s2.mean_sm())});
  table.add_row({"2048", common::Table::num(b1.step_time(), 2),
                 common::Table::num(b2.step_time(), 2),
                 common::Table::num(b1.step_time() / b2.step_time(), 2),
                 common::Table::pct(b1.mean_sm()), common::Table::pct(b2.mean_sm())});
  std::printf("%s", table.render().c_str());

  std::printf("\nFig 20 — memory anatomy at 1024 GPUs:\n");
  common::Table mem({"Strategy", "static/GPU", "activation peak/GPU", "total"});
  mem.add_row({"3D parallelism",
               common::format_bytes(model.static_bytes_3d(v1_small)),
               common::format_bytes(model.activation_bytes_3d(v1_small)),
               common::format_bytes(model.static_bytes_3d(v1_small) +
                                    model.activation_bytes_3d(v1_small))});
  mem.add_row({"hierarchical ZeRO",
               common::format_bytes(model.static_bytes_hier_zero(v2_small)),
               common::format_bytes(model.activation_bytes_hier_zero(v2_small)),
               common::format_bytes(model.static_bytes_hier_zero(v2_small) +
                                    model.activation_bytes_hier_zero(v2_small))});
  std::printf("%s", mem.render().c_str());

  bench::recap("1024-GPU pattern vs 2048-GPU pattern", "very similar (A.4)",
               "V1/V2 " + common::Table::num(s1.step_time() / s2.step_time(), 2) +
                   " vs " + common::Table::num(b1.step_time() / b2.step_time(), 2));
  return 0;
}
