// Fig 19 & 20 (Appendix A.4): the 123B profiling repeated at 1024 GPUs —
// SM-utilization timelines and memory snapshots mirror the 2048-GPU results.
//
// Monte Carlo conversion: besides the canonical single-seed timelines, the
// bench resamples the 1 ms SM-utilization traces across N independent
// replicas and reports t-based 95% confidence intervals on the mean sampled
// SM figures. Flags: --replicas N --threads K --seed S --json out.json
#include "bench_util.h"

using namespace acme;

namespace {

double mean_of(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

struct SampledSm {
  double v1 = 0;
  double v2 = 0;
};

}  // namespace

int main(int argc, char** argv) {
  mc::ReplicationOptions defaults;
  defaults.replicas = 16;
  defaults.stream_label = "fig19-1024";
  const bench::BenchCli obs_cli =
      bench::parse_cli(argc, argv, "bench_fig19_20_1024gpu", defaults);
  const mc::McCli& cli = obs_cli.mc;
  bench::header("Fig 19/20", "123B pretraining profiled at 1024 GPUs (A.4)");

  parallel::PretrainExecutionModel model(parallel::llm_123b());
  parallel::ThreeDConfig v1_small;
  v1_small.world = 1024;
  parallel::HierZeroConfig v2_small;
  v2_small.world = 1024;
  parallel::ThreeDConfig v1_big;  // 2048 for comparison
  parallel::HierZeroConfig v2_big;

  const auto s1 = model.step_3d(v1_small);
  const auto s2 = model.step_hier_zero(v2_small);
  const auto b1 = model.step_3d(v1_big);
  const auto b2 = model.step_hier_zero(v2_big);

  common::Rng rng(19);
  std::printf("Fig 19 — SM utilization at 1024 GPUs (1 ms samples):\n");
  std::printf("  V1: |%s|\n",
              common::sparkline(s1.sample(0.001, 2 * s1.step_time(), rng), 100).c_str());
  std::printf("  V2: |%s|\n\n",
              common::sparkline(s2.sample(0.001, 2 * s2.step_time(), rng), 100).c_str());

  common::Table table({"World", "V1 step (s)", "V2 step (s)", "V1/V2", "V1 mean SM",
                       "V2 mean SM"});
  table.add_row({"1024", common::Table::num(s1.step_time(), 2),
                 common::Table::num(s2.step_time(), 2),
                 common::Table::num(s1.step_time() / s2.step_time(), 2),
                 common::Table::pct(s1.mean_sm()), common::Table::pct(s2.mean_sm())});
  table.add_row({"2048", common::Table::num(b1.step_time(), 2),
                 common::Table::num(b2.step_time(), 2),
                 common::Table::num(b1.step_time() / b2.step_time(), 2),
                 common::Table::pct(b1.mean_sm()), common::Table::pct(b2.mean_sm())});
  std::printf("%s", table.render().c_str());

  std::printf("\nFig 20 — memory anatomy at 1024 GPUs:\n");
  common::Table mem({"Strategy", "static/GPU", "activation peak/GPU", "total"});
  mem.add_row({"3D parallelism",
               common::format_bytes(model.static_bytes_3d(v1_small)),
               common::format_bytes(model.activation_bytes_3d(v1_small)),
               common::format_bytes(model.static_bytes_3d(v1_small) +
                                    model.activation_bytes_3d(v1_small))});
  mem.add_row({"hierarchical ZeRO",
               common::format_bytes(model.static_bytes_hier_zero(v2_small)),
               common::format_bytes(model.activation_bytes_hier_zero(v2_small)),
               common::format_bytes(model.static_bytes_hier_zero(v2_small) +
                                    model.activation_bytes_hier_zero(v2_small))});
  std::printf("%s", mem.render().c_str());

  bench::recap("1024-GPU pattern vs 2048-GPU pattern", "very similar (A.4)",
               "V1/V2 " + common::Table::num(s1.step_time() / s2.step_time(), 2) +
                   " vs " + common::Table::num(b1.step_time() / b2.step_time(), 2));

  // Multi-seed replication: each replica redraws the noisy 1 ms SM samples
  // over two steps of both strategies with its own stream.
  const auto run = mc::run_replicas<SampledSm>(
      cli.options, [&](common::Rng& replica_rng, std::size_t) {
        SampledSm out;
        out.v1 = mean_of(s1.sample(0.001, 2 * s1.step_time(), replica_rng));
        out.v2 = mean_of(s2.sample(0.001, 2 * s2.step_time(), replica_rng));
        return out;
      });

  mc::MetricAggregator v1_sm_pct, v2_sm_pct, v2_gain_pct;
  mc::fold_metric(run, [](const SampledSm& r) { return 100.0 * r.v1; }, v1_sm_pct);
  mc::fold_metric(run, [](const SampledSm& r) { return 100.0 * r.v2; }, v2_sm_pct);
  mc::fold_metric(run, [](const SampledSm& r) { return 100.0 * (r.v2 - r.v1); },
                  v2_gain_pct);

  mc::BenchReport report("fig19_20_1024gpu");
  report.set_timing(run.timing, cli.options.replicas);
  report.add_metric("v1_sampled_mean_sm", v1_sm_pct, "%");
  report.add_metric("v2_sampled_mean_sm", v2_sm_pct, "%");
  report.add_metric("v2_minus_v1_mean_sm", v2_gain_pct, "%");

  bench::recap("V1 sampled mean SM at 1024 (multi-seed)", "~40% (Fig 19a)",
               common::Table::num(v1_sm_pct.mean(), 1) + "%",
               mc::format_with_ci(v1_sm_pct.mean(), v1_sm_pct.ci95(), "%", 2));
  bench::recap("V2 sampled mean SM at 1024 (multi-seed)", "higher, fewer dips",
               common::Table::num(v2_sm_pct.mean(), 1) + "%",
               mc::format_with_ci(v2_sm_pct.mean(), v2_sm_pct.ci95(), "%", 2));
  bench::recap("V2 - V1 mean SM gap (multi-seed)", "positive",
               common::Table::num(v2_gain_pct.mean(), 1) + "%",
               mc::format_with_ci(v2_gain_pct.mean(), v2_gain_pct.ci95(), "%", 2));
  bench::mc_footer(report, cli);
  return bench::finish(obs_cli);
}
