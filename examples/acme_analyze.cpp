// acme_analyze: a trace characterization CLI.
//
// Reads a job trace in AcmeSim CSV format (as exported by datacenter_replay
// or written by any scheduler integration) and prints the paper-style
// characterization: type mix, demand skew, duration/queuing CDF summaries and
// final-status shares.
//
//   ./build/examples/acme_analyze <trace.csv>
//   ./build/examples/acme_analyze --selftest     (synthesizes its own input)
#include <cstdio>
#include <cstring>

#include "core/acme.h"

using namespace acme;

namespace {

void characterize(const trace::Trace& jobs) {
  std::size_t gpu_jobs = 0, cpu_jobs = 0;
  for (const auto& j : jobs) (j.is_gpu_job() ? gpu_jobs : cpu_jobs)++;
  std::printf("jobs: %zu (%zu GPU, %zu CPU)\n\n", jobs.size(), gpu_jobs, cpu_jobs);

  std::printf("== workload mix (Fig 4 style) ==\n");
  common::Table mix({"Workload", "count share", "GPU-time share", "demand median",
                     "duration median", "queue delay median"});
  const auto shares = trace::type_shares(jobs);
  for (const auto& [type, share] : shares) {
    mix.add_row({trace::to_string(type), common::Table::pct(share.count_fraction),
                 common::Table::pct(share.gpu_time_fraction),
                 common::Table::integer(trace::demand_of(jobs, type).median()),
                 common::format_duration(trace::durations_of(jobs, type).median()),
                 common::format_duration(trace::queue_delays_of(jobs, type).median())});
  }
  std::printf("%s\n", mix.render().c_str());

  std::printf("== demand skew (Fig 3 style) ==\n");
  const auto per_job = trace::demand_per_job(jobs);
  const auto weighted = trace::demand_weighted_by_gpu_time(jobs);
  std::printf("  avg requested GPUs:            %.1f\n", trace::average_gpu_demand(jobs));
  std::printf("  jobs requesting > 8 GPUs:      %s\n",
              common::Table::pct(1.0 - per_job.cdf(8.0)).c_str());
  std::printf("  single-GPU share of GPU time:  %s\n",
              common::Table::pct(weighted.cdf(1.0)).c_str());
  std::printf("  >=256-GPU share of GPU time:   %s\n\n",
              common::Table::pct(1.0 - weighted.cdf(255.0)).c_str());

  std::printf("== durations & delays ==\n");
  const auto dur = trace::durations(jobs);
  std::printf("  duration median/mean/p95: %s / %s / %s; >1 day: %s\n",
              common::format_duration(dur.median()).c_str(),
              common::format_duration(dur.mean()).c_str(),
              common::format_duration(dur.quantile(0.95)).c_str(),
              common::Table::pct(1.0 - dur.cdf(common::kDay)).c_str());

  std::printf("\n== final statuses (Fig 17 style) ==\n");
  common::Table statuses({"Status", "count share", "GPU-time share"});
  for (const auto& [status, share] : trace::status_shares(jobs))
    statuses.add_row({trace::to_string(status),
                      common::Table::pct(share.count_fraction),
                      common::Table::pct(share.gpu_time_fraction)});
  std::printf("%s", statuses.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.csv>\n       %s --selftest\n", argv[0], argv[0]);
    return 2;
  }
  trace::Trace jobs;
  if (std::strcmp(argv[1], "--selftest") == 0) {
    auto profile = trace::scaled(trace::seren_profile(), 40.0);
    profile.cpu_jobs /= 4;
    jobs = trace::TraceSynthesizer(profile).generate();
    std::printf("(self-test: synthesized %zu-job Seren-like trace)\n\n", jobs.size());
  } else {
    try {
      jobs = trace::read_csv_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot read %s: %s\n", argv[1], e.what());
      return 1;
    }
  }
  characterize(jobs);
  return 0;
}
