// Quickstart: the AcmeSim public API in one small program.
//
//   1. describe a GPU cluster,
//   2. synthesize a workload and replay it through the scheduler,
//   3. inspect queuing behaviour,
//   4. diagnose a failed job's runtime log.
//
// Build & run:  ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "core/acme.h"

using namespace acme;

int main() {
  // --- 1. a small cluster: 16 A100 nodes, Slurm-style reservation ---
  cluster::ClusterSpec spec = cluster::seren_spec();
  spec.name = "mini";
  spec.node_count = 16;

  sched::SchedulerConfig sched_cfg;
  sched_cfg.pretrain_reservation = 0.5;  // half the nodes reserved for pretraining
  sched_cfg.eval_cap_fraction = 0.1;

  // --- 2. a one-week workload calibrated to the Acme distributions ---
  trace::ClusterWorkloadProfile profile = trace::scaled(trace::seren_profile(), 26.0);
  profile.cluster_name = "mini";
  profile.gpu_jobs = 4000;
  profile.cpu_jobs = 0;
  profile.pretrain_campaign_slots = {32, 32};  // two standing campaigns

  trace::TraceSynthesizer synth(profile);
  auto jobs = synth.generate();
  // The Acme distributions include 128-GPU best-effort jobs; clamp demands to
  // what this 16-node toy cluster's shared partition can ever hold.
  for (auto& job : jobs)
    if (job.is_gpu_job() && job.type != trace::WorkloadType::kPretrain)
      job.gpus = std::min(job.gpus, 64);

  sched::SchedulerReplay scheduler(spec, sched_cfg);
  const auto result = scheduler.replay(jobs, /*sample_interval=*/300.0);

  std::printf("replayed %zu jobs over %.1f days (%zu left unscheduled)\n",
              result.jobs.size(), result.makespan / common::kDay, result.unstarted);

  // --- 3. who waits? (the paper's Fig 6 finding in miniature) ---
  common::Table table({"Workload", "jobs", "median wait", "median runtime"});
  for (trace::WorkloadType type : trace::kAllWorkloadTypes) {
    const auto delays = trace::queue_delays_of(result.jobs, type);
    if (delays.empty()) continue;
    table.add_row({trace::to_string(type), std::to_string(delays.count()),
                   common::format_duration(delays.median()),
                   common::format_duration(
                       trace::durations_of(result.jobs, type).median())});
  }
  std::printf("%s", table.render().c_str());

  // --- 4. diagnose a failure from its runtime log ---
  common::Rng rng(1);
  failure::LogSynthesizer logs;
  const auto broken_job = logs.failed_run(failure::spec_for("NVLink Error"), rng);

  diagnosis::FailureAgent agent;
  std::vector<const failure::FailureSpec*> knowledge;
  for (const auto& s : failure::failure_table()) knowledge.push_back(&s);
  agent.seed_rules(knowledge);

  const auto verdict = agent.diagnose(broken_job.lines);
  std::printf("\ndiagnosis of the failed job:\n  root cause: %s (via %s)\n"
              "  infrastructure: %s\n  suggestion: %s\n",
              verdict.reason.c_str(), verdict.source.c_str(),
              verdict.infrastructure ? "yes" : "no", verdict.suggestion.c_str());

  // ...and localize the faulty node exactly as §6.1-3 prescribes.
  std::vector<cluster::NodeId> probe;
  for (int i = 0; i < spec.node_count; ++i) probe.push_back(i);
  const auto localization =
      recovery::two_round_localize(probe, [](cluster::NodeId id) { return id == 11; });
  std::printf("  two-round test: %d round-1 worlds, faulty node(s):",
              localization.round1_worlds);
  for (auto id : localization.faulty) std::printf(" %d", id);
  std::printf(" (%.0f s of testing)\n", localization.duration_seconds);
  return 0;
}
