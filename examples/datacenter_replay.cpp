// Six-month datacenter characterization: synthesize both Acme clusters,
// replay them through their schedulers, export the trace to CSV, and print
// the paper's headline findings.
//
// Build & run:  ./build/examples/datacenter_replay [output.csv]
#include <cstdio>

#include "core/acme.h"

using namespace acme;

int main(int argc, char** argv) {
  std::printf("== six-month Acme replay (Seren at 1/8 job scale, Kalos full) ==\n");

  const auto seren = core::run_six_month_replay(core::seren_setup(), 8.0);
  const auto kalos = core::run_six_month_replay(core::kalos_setup(), 1.0);

  struct Entry {
    const char* name;
    const core::SixMonthReplay* replay;
  };
  for (const auto& [name, replay] : {Entry{"Seren", &seren}, Entry{"Kalos", &kalos}}) {
    const auto& jobs = replay->replay.jobs;
    const auto shares = trace::type_shares(jobs);
    const auto statuses = trace::status_shares(jobs);
    std::printf("\n-- %s: %zu GPU jobs, occupancy %.0f%% --\n", name, jobs.size(),
                replay->busy_fraction * 100);
    std::printf("  median job duration:      %s\n",
                common::format_duration(trace::durations(jobs).median()).c_str());
    std::printf("  avg requested GPUs:       %.1f\n", trace::average_gpu_demand(jobs));
    std::printf("  pretraining:              %s of jobs, %s of GPU time\n",
                common::Table::pct(
                    shares.at(trace::WorkloadType::kPretrain).count_fraction)
                    .c_str(),
                common::Table::pct(
                    shares.at(trace::WorkloadType::kPretrain).gpu_time_fraction)
                    .c_str());
    std::printf("  evaluation:               %s of jobs, %s of GPU time\n",
                common::Table::pct(
                    shares.at(trace::WorkloadType::kEvaluation).count_fraction)
                    .c_str(),
                common::Table::pct(
                    shares.at(trace::WorkloadType::kEvaluation).gpu_time_fraction)
                    .c_str());
    std::printf("  failed jobs:              %s\n",
                common::Table::pct(
                    statuses.at(trace::JobStatus::kFailed).count_fraction)
                    .c_str());
    std::printf("  median eval queue delay:  %s (longest of all classes)\n",
                common::format_duration(
                    trace::queue_delays_of(jobs, trace::WorkloadType::kEvaluation)
                        .median())
                    .c_str());
    std::printf("  median pretrain delay:    %s (reservation working)\n",
                common::format_duration(
                    trace::queue_delays_of(jobs, trace::WorkloadType::kPretrain)
                        .median())
                    .c_str());
  }

  const std::string path = argc > 1 ? argv[1] : "/tmp/acme_seren_trace.csv";
  trace::write_csv_file(path, seren.replay.jobs);
  std::printf("\nSeren trace (with replayed queue delays) exported to %s\n",
              path.c_str());
  const auto back = trace::read_csv_file(path);
  std::printf("round-trip check: %zu rows re-read\n", back.size());
  return 0;
}
