// Decoupled evaluation scheduling (§6.2): evaluate a 7B checkpoint across
// the 63-dataset suite, comparing per-dataset baseline trials against the
// trial coordinator, then against a custom user-defined suite.
//
// Build & run:  ./build/examples/evaluation_coordinator
#include <cstdio>

#include "core/acme.h"

using namespace acme;

int main() {
  std::printf("== evaluating one 7B checkpoint on %zu datasets ==\n\n",
              evalsched::dataset_suite().size());

  for (int nodes : {1, 2, 4}) {
    const auto base =
        evalsched::TrialCoordinator(evalsched::TrialCoordinator::baseline_config(nodes))
            .run();
    const auto ours = evalsched::TrialCoordinator(
                          evalsched::TrialCoordinator::coordinator_config(nodes))
                          .run();
    std::printf("%d node(s): baseline %-9s -> coordinator %-9s (%.2fx, GPU idle "
                "%.0f%% -> %.0f%%)\n",
                nodes, common::format_duration(base.makespan).c_str(),
                common::format_duration(ours.makespan).c_str(),
                base.makespan / ours.makespan, base.gpu_idle_fraction() * 100,
                ours.gpu_idle_fraction() * 100);
  }

  // A custom suite: your own benchmark with a brutal judge-based metric.
  std::vector<evalsched::Dataset> custom = {
      {"my-agentic-bench", 60, 420, 2400, true},   // 40 min of GPT-judge scoring
      {"my-regression-set", 20, 90, 10, true},
      {"my-safety-probe", 25, 140, 30, true},
  };
  evalsched::EvalConfig cfg = evalsched::TrialCoordinator::coordinator_config(1);
  const auto base = evalsched::TrialCoordinator(
                        evalsched::TrialCoordinator::baseline_config(1))
                        .run(custom);
  const auto ours = evalsched::TrialCoordinator(cfg).run(custom);
  std::printf("\ncustom 3-dataset suite on one node:\n"
              "  baseline %-9s (the judge metric pins a GPU for 40 min)\n"
              "  coordinator %-9s (judge shards scored off-GPU by CPU jobs)\n"
              "  speedup %.2fx across %d vs %d trials\n",
              common::format_duration(base.makespan).c_str(),
              common::format_duration(ours.makespan).c_str(),
              base.makespan / ours.makespan, base.trials, ours.trials);

  // Why loading must be decoupled: the Fig 16-left contention curve.
  std::printf("\nmodel-loading contention (7B checkpoint, Seren storage):\n");
  const double model_bytes = 2.0 * parallel::llm_7b().params();
  for (int trials : {1, 8, 64}) {
    sim::Engine engine;
    storage::StorageNetwork net(engine, storage::seren_storage_config());
    double last = 0;
    for (int i = 0; i < trials; ++i)
      net.start_flow(i / 8, model_bytes, [&] { last = engine.now(); });
    engine.run();
    std::printf("  %3d concurrent trials: %.1f s per load\n", trials, last);
  }
  return 0;
}
