// Fault-tolerant pretraining (§6.1) end to end: run a 123B campaign on 2048
// simulated GPUs under (a) manual on-call recovery and (b) the automatic
// pipeline (async checkpointing + diagnosis + two-round localization +
// auto-restart), then stage real checkpoints through the threaded writer.
//
// Build & run:  ./build/examples/fault_tolerant_pretraining
#include <cstdio>
#include <filesystem>

#include "core/acme.h"

using namespace acme;

namespace {

recovery::RunnerReport run(bool auto_recovery) {
  recovery::RunnerConfig cfg;
  cfg.model = parallel::llm_123b();
  cfg.gpus = 2048;
  cfg.step_seconds = 13.0;
  cfg.ckpt_interval_seconds = 30 * common::kMinute;
  cfg.async_ckpt = true;
  cfg.auto_recovery = auto_recovery;
  cfg.graceful_cancel = true;
  cfg.horizon_seconds = 30 * common::kDay;
  cfg.seed = 2024;
  return recovery::FaultTolerantRunner(cfg).run();
}

}  // namespace

int main() {
  std::printf("== 123B pretraining, 2048 GPUs, 30 simulated days ==\n\n");

  const auto manual = run(false);
  const auto automatic = run(true);

  common::Table table({"", "manual on-call", "automatic (Sec 6.1)"});
  auto row = [&](const char* what, const std::string& a, const std::string& b) {
    table.add_row({what, a, b});
  };
  row("final iteration", std::to_string(manual.final_step),
      std::to_string(automatic.final_step));
  row("failures hit", std::to_string(manual.failures),
      std::to_string(automatic.failures));
  row("manual interventions", std::to_string(manual.manual_interventions),
      std::to_string(automatic.manual_interventions));
  row("nodes cordoned", std::to_string(manual.nodes_cordoned),
      std::to_string(automatic.nodes_cordoned));
  row("iterations lost to rollback", std::to_string(manual.steps_lost_to_rollback),
      std::to_string(automatic.steps_lost_to_rollback));
  row("goodput", common::Table::pct(manual.goodput()),
      common::Table::pct(automatic.goodput()));
  std::printf("%s", table.render().c_str());

  std::printf("\nfirst automatic recoveries:\n");
  int shown = 0;
  for (const auto& event : automatic.events) {
    if (event.kind != "failure") continue;
    std::printf("  day %4.1f  step %8llu  %s  (stall %s, lost %llu steps)\n",
                event.time / common::kDay,
                static_cast<unsigned long long>(event.step), event.detail.c_str(),
                common::format_duration(event.stall_seconds).c_str(),
                static_cast<unsigned long long>(event.steps_lost));
    if (++shown == 6) break;
  }

  // The real asynchronous checkpoint writer, persisting to disk.
  const auto dir = std::filesystem::temp_directory_path() / "acme_example_ckpt";
  std::filesystem::remove_all(dir);
  ckpt::FileSink sink(dir.string());
  ckpt::AsyncCheckpointWriter writer(sink, /*capacity=*/2);
  std::vector<std::byte> shard(8 << 20);  // one GPU's 8 MB toy shard
  for (std::uint64_t step = 500; step <= 2000; step += 500)
    writer.snapshot(step, shard);
  writer.flush();
  const auto stats = writer.stats();
  std::printf("\nAsyncCheckpointWriter persisted %llu checkpoints to %s "
              "(dropped %llu while staging)\n",
              static_cast<unsigned long long>(stats.persisted), dir.c_str(),
              static_cast<unsigned long long>(stats.dropped));
  std::filesystem::remove_all(dir);
  return 0;
}
