#!/usr/bin/env python3
"""Diff two benchmark JSON reports with a tolerance band.

Accepts either format the repo produces:
  * Google Benchmark ``--benchmark_out`` JSON (a top-level ``benchmarks``
    list with ``items_per_second`` / ``real_time`` entries), or
  * the checked-in ``BENCH_<n>.json`` trajectory format (a ``results``
    mapping of benchmark name -> {"items_per_second": ...} or
    {"seconds": ...}).

Throughput-style metrics (items/s) regress when they go DOWN; time-style
metrics (seconds) regress when they go UP. Both are normalized to a ratio
``current / reference`` in "bigger is better" orientation, and the run fails
when any shared benchmark's ratio drops below ``1 - tolerance``.

Usage:
  tools/bench_compare.py reference.json current.json [--tolerance 0.25]

Exit status: 0 when every shared benchmark is within the band, 1 on any
regression past the band, 2 on usage/parse errors. Benchmarks present in
only one report are listed but never fail the run (CI boxes differ in what
they build) — unless ``--require-baseline`` is set, in which case every
benchmark in the reference must also appear in the candidate: a renamed or
silently-dropped benchmark then fails loudly instead of being "ignored".
"""

import argparse
import json
import sys


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")


def extract_metrics(doc):
    """Returns {name: (value, bigger_is_better)} from either JSON schema."""
    metrics = {}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        # Google Benchmark report. Aggregate rows (repetitions) keep only the
        # mean so noisy p99-style aggregates don't produce false alarms.
        for row in doc["benchmarks"]:
            name = row.get("name", "")
            if row.get("run_type") == "aggregate" and row.get(
                    "aggregate_name") != "mean":
                continue
            base = name.split("_mean")[0] if name.endswith("_mean") else name
            if "items_per_second" in row:
                metrics[base] = (float(row["items_per_second"]), True)
            elif "real_time" in row:
                metrics[base] = (float(row["real_time"]), False)
    elif isinstance(doc, dict) and isinstance(doc.get("results"), dict):
        # BENCH_<n>.json trajectory format.
        for name, entry in doc["results"].items():
            if not isinstance(entry, dict):
                continue
            if "items_per_second" in entry:
                metrics[name] = (float(entry["items_per_second"]), True)
            elif "seconds" in entry:
                metrics[name] = (float(entry["seconds"]), False)
    return metrics


def compare(reference, current, tolerance):
    """Prints a per-benchmark table; returns the list of regressed names."""
    regressions = []
    shared = sorted(set(reference) & set(current))
    if not shared:
        print("bench_compare: no shared benchmarks between the two reports")
        return regressions
    width = max(len(n) for n in shared)
    floor = 1.0 - tolerance
    for name in shared:
        ref_value, bigger_better = reference[name]
        cur_value, _ = current[name]
        if ref_value <= 0 or cur_value <= 0:
            print(f"  {name:<{width}}  skipped (non-positive value)")
            continue
        ratio = (cur_value / ref_value) if bigger_better else (ref_value /
                                                              cur_value)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        unit = "items/s" if bigger_better else "s"
        print(f"  {name:<{width}}  {ref_value:.6g} -> {cur_value:.6g} {unit}"
              f"  (x{ratio:.3f})  {verdict}")
        if ratio < floor:
            regressions.append(name)
    for name in sorted(set(reference) ^ set(current)):
        side = "reference" if name in reference else "current"
        print(f"  {name:<{width}}  only in {side} report (ignored)")
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reference", help="baseline JSON report")
    parser.add_argument("current", help="candidate JSON report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25: "
        "CI boxes are noisy; the band catches order-of-magnitude breaks, "
        "not single-digit drift)")
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help="fail (exit 2) when any benchmark in the reference report is "
        "missing from the candidate, instead of listing it as ignored")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    reference = extract_metrics(_load(args.reference))
    current = extract_metrics(_load(args.current))
    print(f"bench_compare: {args.reference} vs {args.current} "
          f"(tolerance {args.tolerance:.0%})")
    if args.require_baseline:
        missing = sorted(set(reference) - set(current))
        if missing:
            print("bench_compare: candidate report is missing baseline "
                  f"benchmark(s): {', '.join(missing)}")
            print("bench_compare: (was the benchmark renamed, or did its "
                  "--json emission break?)")
            return 2
    regressions = compare(reference, current, args.tolerance)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) past the "
              f"band: {', '.join(regressions)}")
        return 1
    print("bench_compare: within the tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
