// Determinism-oracle scenario fuzzer (DESIGN.md §12).
//
// Each iteration derives its own RNG stream (fork("iter-<i>") of --seed) and
// does one of two things:
//
//   * parser probe (~25%): splices a hostile value — nan/inf/-inf, a dropped
//     sign, a typo'd key — into scenario JSON and requires scenario_from_json
//     to reject it with a non-empty reason. A probe that PARSES is a finding.
//
//   * oracle run (~75%): mutates the base ScenarioSpec within typed bounds,
//     runs the world straight through, then re-runs it save-at-midpoint →
//     restore → run-to-end and requires the two WorldReport digests to be
//     byte-identical. Each iteration also draws a window-drain width from
//     {1, 2, 8} (the workers mutation axis, DESIGN.md §13); widths > 1
//     re-run the accepted mutant through World::run_parallel and require
//     digest equality with the serial drain. Any divergence, thrown
//     ACME_CHECK, or crash-by-exception is a finding.
//
// Findings are shrunk greedily — each mutated field is reverted toward the
// base spec while the failure persists — and the minimal reproducer (spec
// JSON or probe string, plus the exact repro command) lands in
// --artifact-dir. Exit 1 if anything was found, 0 on a clean sweep.
//
// Flags: --iters N --seed S --base SCENARIO --artifact-dir DIR --only I
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/acme.h"
#include "snap/format.h"

using namespace acme;

namespace {

// ---- oracle -----------------------------------------------------------

struct OracleOutcome {
  bool rejected = false;  // the world itself refused the spec up front
  std::string verdict;    // non-empty = a real finding
};

// Runs spec straight through and via save-at-midpoint/restore. A CheckError
// from the STRAIGHT run is the world rejecting an invalid configuration
// (e.g. a model too big for its replica's KV-cache) — that is loud-failure
// working as designed, not a determinism bug, so it is classified as
// `rejected`. Once the straight run succeeds, ANY exception or digest
// divergence on the save/restore path is a finding.
OracleOutcome oracle_verdict(const world::ScenarioSpec& spec,
                             std::size_t workers) {
  OracleOutcome out;
  std::uint64_t straight_digest = 0;
  double mid = 0;
  try {
    const world::WorldReport straight = world::World(spec).run();
    straight_digest = straight.digest();
    mid = straight.replay.makespan * 0.5;
    if (spec.serving())
      mid = std::max(mid, spec.serve_duration_seconds * 0.5);
  } catch (const common::CheckError&) {
    out.rejected = true;
    return out;
  } catch (const std::exception& e) {
    out.verdict = std::string("straight run threw non-check: ") + e.what();
    return out;
  }
  // Workers axis: an accepted mutant must drain to the same digest through
  // the parallel window runtime at this iteration's width.
  if (workers > 1) {
    try {
      task::Pool pool(workers);
      world::World parallel(spec);
      const std::uint64_t par = parallel.run_parallel(pool).digest();
      if (par != straight_digest) {
        out.verdict = "parallel drain digest divergence (workers=" +
                      std::to_string(workers) + "): straight " +
                      common::fnv1a_hex(straight_digest) + " vs parallel " +
                      common::fnv1a_hex(par);
        return out;
      }
    } catch (const std::exception& e) {
      out.verdict = std::string("parallel drain threw (workers=") +
                    std::to_string(workers) + "): " + e.what();
      return out;
    }
  }
  try {
    world::World a(spec);
    a.run_until(mid);
    snap::SnapshotWriter w;
    a.save(w);
    snap::SnapshotReader r(w.finish());
    world::World b(spec);
    b.restore(r);
    b.run_until(std::numeric_limits<double>::infinity());
    if (!b.done()) {
      out.verdict = "restored world did not drain its event queue";
      return out;
    }
    const std::uint64_t resumed = b.finish().digest();
    if (straight_digest != resumed)
      out.verdict = "digest divergence: straight " +
                    common::fnv1a_hex(straight_digest) + " vs resumed " +
                    common::fnv1a_hex(resumed);
    return out;
  } catch (const std::exception& e) {
    out.verdict = std::string("save/restore path threw: ") + e.what();
    return out;
  }
}

// ---- mutations --------------------------------------------------------

// One typed-bounds mutation per mutable field. Bounds keep each world cheap
// (high scale = few jobs, short serve horizons) so hundreds of oracle runs
// fit in a CI stress slot.
struct Mutator {
  const char* field;
  void (*apply)(world::ScenarioSpec&, common::Rng&);
  void (*revert)(world::ScenarioSpec&, const world::ScenarioSpec&);
};

const Mutator kMutators[] = {
    {"scale",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.scale = r.uniform(100.0, 400.0);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.scale = b.scale;
     }},
    {"seed",
     [](world::ScenarioSpec& s, common::Rng& r) { s.seed = r.next(); },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.seed = b.seed;
     }},
    {"inject_failures",
     [](world::ScenarioSpec& s, common::Rng&) {
       s.inject_failures = !s.inject_failures;
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.inject_failures = b.inject_failures;
     }},
    {"failure_interval_scale",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.failure_interval_scale = r.uniform(0.25, 4.0);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.failure_interval_scale = b.failure_interval_scale;
     }},
    {"auto_recovery",
     [](world::ScenarioSpec& s, common::Rng&) {
       s.auto_recovery = !s.auto_recovery;
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.auto_recovery = b.auto_recovery;
     }},
    {"ckpt_interval_seconds",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.ckpt_interval_seconds = r.uniform(300.0, 7200.0);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.ckpt_interval_seconds = b.ckpt_interval_seconds;
     }},
    {"async_ckpt",
     [](world::ScenarioSpec& s, common::Rng&) { s.async_ckpt = !s.async_ckpt; },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.async_ckpt = b.async_ckpt;
     }},
    {"sample_interval_seconds",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.sample_interval_seconds = r.uniform(300.0, 3600.0);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.sample_interval_seconds = b.sample_interval_seconds;
     }},
    {"fleet_samples",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.fleet_samples = static_cast<std::size_t>(r.next() % 500);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.fleet_samples = b.fleet_samples;
     }},
    {"serve",
     [](world::ScenarioSpec& s, common::Rng& r) {
       s.serve_replicas = 1 + static_cast<int>(r.next() % 3);
       const int gpu_choices[] = {1, 2, 4, 8};
       s.serve_gpus_per_replica = gpu_choices[r.next() % 4];
       const char* models[] = {"7b", "104b", "123b", "moe"};
       s.serve_model = models[r.next() % 4];
       s.serve_rps = r.uniform(5.0, 40.0);
       s.serve_duration_seconds = r.uniform(300.0, 1200.0);
       s.serve_diurnal_amplitude = r.uniform(0.0, 1.0);
       s.serve_burst_multiplier = r.uniform(1.0, 5.0);
       s.serve_burst_fraction = r.uniform(0.0, 0.5);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.serve_replicas = b.serve_replicas;
       s.serve_gpus_per_replica = b.serve_gpus_per_replica;
       s.serve_model = b.serve_model;
       s.serve_rps = b.serve_rps;
       s.serve_duration_seconds = b.serve_duration_seconds;
       s.serve_diurnal_amplitude = b.serve_diurnal_amplitude;
       s.serve_burst_multiplier = b.serve_burst_multiplier;
       s.serve_burst_fraction = b.serve_burst_fraction;
     }},
    {"topology",
     [](world::ScenarioSpec& s, common::Rng& r) {
       // Correlated-failure axis: a tiered fleet with domain outages armed.
       // Fleet sizes stay >= the largest campaign demand (2048 GPUs) so the
       // scheduler accepts the preset trace; tier shapes stay small enough
       // that hundreds of oracle runs fit a CI stress slot.
       const int node_choices[] = {0, 286, 512, 1024};
       s.node_count = node_choices[r.next() % 4];
       s.topo_datacenters = 1 + static_cast<int>(r.next() % 3);
       s.topo_pods_per_dc = 1 + static_cast<int>(r.next() % 4);
       const int switch_choices[] = {0, 4, 8};
       s.topo_nodes_per_switch = switch_choices[r.next() % 3];
       s.domain_failures = (r.next() % 2) == 0;
       s.domain_failure_interval_scale = r.uniform(0.01, 1.0);
     },
     [](world::ScenarioSpec& s, const world::ScenarioSpec& b) {
       s.node_count = b.node_count;
       s.topo_datacenters = b.topo_datacenters;
       s.topo_pods_per_dc = b.topo_pods_per_dc;
       s.topo_nodes_per_switch = b.topo_nodes_per_switch;
       s.domain_failures = b.domain_failures;
       s.domain_failure_interval_scale = b.domain_failure_interval_scale;
     }},
};
constexpr std::size_t kMutatorCount = sizeof(kMutators) / sizeof(kMutators[0]);

// ---- parser probes ----------------------------------------------------

// Returns a non-empty description if the parser ACCEPTED hostile input (or
// blew up non-locally). `probe_out` receives the JSON that was tried.
std::string parser_probe(common::Rng& rng, std::string* probe_out) {
  static const char* kDoubleKeys[] = {
      "scale",          "failure_interval_scale", "ckpt_interval_seconds",
      "sample_interval_seconds", "serve_rps",     "serve_duration_seconds",
      "serve_slo_ttft_seconds",  "serve_burst_multiplier",
  };
  static const char* kBadValues[] = {"nan", "inf", "-inf", "-8", "-0.5",
                                     "-1e6"};
  std::string json;
  switch (rng.next() % 3) {
    case 0: {  // hostile number in a known key
      const char* key = kDoubleKeys[rng.next() % 8];
      const char* bad = kBadValues[rng.next() % 6];
      json = std::string("{\"") + key + "\":" + bad + "}";
      break;
    }
    case 1: {  // hostile number hidden among valid keys
      const char* bad = kBadValues[rng.next() % 3];  // only the non-finite ones
      json = std::string("{\"scale\":8,\"serve_replicas\":1,\"serve_rps\":") +
             bad + "}";
      break;
    }
    default: {  // typo'd key — must produce a did-you-mean rejection
      json = "{\"scael\":8}";
      break;
    }
  }
  *probe_out = json;
  try {
    std::string error;
    const auto spec = world::scenario_from_json(json, &error);
    if (spec.has_value())
      return "parser accepted hostile input: " + json;
    if (error.empty()) return "parser rejected without a reason: " + json;
    return "";
  } catch (const std::exception& e) {
    return std::string("parser threw instead of rejecting: ") + e.what();
  }
}

// ---- shrinking --------------------------------------------------------

// Greedily reverts mutated fields toward the base spec while the oracle
// still fails; returns the minimal failing spec.
world::ScenarioSpec shrink(world::ScenarioSpec failing,
                           const world::ScenarioSpec& base,
                           const std::vector<std::size_t>& applied,
                           std::size_t workers, std::string* verdict) {
  for (std::size_t idx : applied) {
    world::ScenarioSpec candidate = failing;
    kMutators[idx].revert(candidate, base);
    const OracleOutcome o = oracle_verdict(candidate, workers);
    if (!o.rejected && !o.verdict.empty()) {
      failing = candidate;
      *verdict = o.verdict;
      std::printf("  [shrink] reverted %s — still fails\n",
                  kMutators[idx].field);
    }
  }
  return failing;
}

struct Finding {
  std::uint64_t iter;
  std::string kind;     // "oracle" | "parser"
  std::string verdict;  // why it failed
  std::string repro;    // spec JSON or probe JSON
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 100;
  std::uint64_t seed = 1;
  std::uint64_t only = std::numeric_limits<std::uint64_t>::max();
  std::string base_name = "seren";
  std::string artifact_dir = "fuzz-artifacts";

  common::FlagSet flags("acme_fuzz");
  flags.add("--iters", &iters, "scenarios to fuzz (default 100)");
  flags.add("--seed", &seed, "root seed; iteration i uses fork(\"iter-i\")");
  flags.add("--base", &base_name,
            "registered scenario the mutations start from (default seren)");
  flags.add("--artifact-dir", &artifact_dir,
            "where failing reproducers are written (default fuzz-artifacts)");
  flags.add("--only", &only,
            "re-run exactly this iteration index (reproducer mode)");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "acme_fuzz: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  const auto base_opt = world::find_scenario(base_name);
  if (!base_opt) {
    std::fprintf(stderr, "acme_fuzz: unknown base scenario \"%s\"\n",
                 base_name.c_str());
    return 2;
  }
  // The fuzz base trims the preset to fuzz-speed: high scale = few jobs.
  world::ScenarioSpec base = *base_opt;
  base.scale = std::max(base.scale, 100.0);
  base.fleet_samples = std::min<std::size_t>(base.fleet_samples, 200);

  const common::Rng root(seed);
  std::vector<Finding> findings;
  std::uint64_t oracle_runs = 0, parser_probes = 0, rejected_specs = 0;

  const std::uint64_t first = only != std::numeric_limits<std::uint64_t>::max()
                                  ? only
                                  : 0;
  const std::uint64_t last = only != std::numeric_limits<std::uint64_t>::max()
                                 ? only + 1
                                 : iters;
  for (std::uint64_t i = first; i < last; ++i) {
    common::Rng rng = root.fork("iter-" + std::to_string(i));
    if (rng.next() % 4 == 0) {  // parser probe
      ++parser_probes;
      std::string probe;
      const std::string verdict = parser_probe(rng, &probe);
      if (!verdict.empty()) {
        std::printf("[%llu] PARSER FINDING: %s\n",
                    static_cast<unsigned long long>(i), verdict.c_str());
        findings.push_back({i, "parser", verdict, probe});
      }
      continue;
    }
    // Oracle run: mutate 1..4 fields within typed bounds.
    ++oracle_runs;
    world::ScenarioSpec spec = base;
    spec.name = "fuzz-" + std::to_string(i);
    std::vector<std::size_t> applied;
    const std::size_t count = 1 + rng.next() % 4;
    for (std::size_t m = 0; m < count; ++m) {
      const std::size_t idx = rng.next() % kMutatorCount;
      kMutators[idx].apply(spec, rng);
      applied.push_back(idx);
    }
    // Workers mutation axis: drawn from the same iteration stream, so
    // --only <i> reproduces the width along with the field mutations.
    static constexpr std::size_t kWorkersAxis[] = {1, 2, 8};
    const std::size_t workers = kWorkersAxis[rng.next() % 3];
    const OracleOutcome outcome = oracle_verdict(spec, workers);
    if (outcome.rejected) {
      ++rejected_specs;
    } else if (!outcome.verdict.empty()) {
      std::string verdict = outcome.verdict;
      std::printf("[%llu] ORACLE FINDING (workers=%zu): %s\n",
                  static_cast<unsigned long long>(i), workers,
                  verdict.c_str());
      spec = shrink(spec, base, applied, workers, &verdict);
      findings.push_back({i, "oracle", verdict, spec.to_json()});
    }
    if ((i + 1) % 50 == 0)
      std::printf("[fuzz] %llu/%llu iterations, %zu findings\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(last), findings.size());
  }

  std::printf("\n[fuzz] done: %llu oracle runs (%llu specs rejected up "
              "front), %llu parser probes, %zu findings\n",
              static_cast<unsigned long long>(oracle_runs),
              static_cast<unsigned long long>(rejected_specs),
              static_cast<unsigned long long>(parser_probes), findings.size());
  if (findings.empty()) return 0;

  std::filesystem::create_directories(artifact_dir);
  for (const Finding& f : findings) {
    const std::string stem =
        artifact_dir + "/repro-" + std::to_string(f.iter);
    std::ofstream(stem + ".json") << f.repro << "\n";
    std::ofstream meta(stem + ".txt");
    meta << "kind: " << f.kind << "\n"
         << "verdict: " << f.verdict << "\n"
         << "seed: " << seed << "\n"
         << "iteration: " << f.iter << "\n"
         << "repro: acme_fuzz --seed " << seed << " --only " << f.iter
         << " --base " << base_name << " --artifact-dir " << artifact_dir
         << "\n";
    std::printf("[fuzz] reproducer written: %s.{json,txt}\n", stem.c_str());
  }
  return 1;
}
