// Fast-forward / branch driver (DESIGN.md §12).
//
// A world snapshot freezes the expensive warm-up — trace synthesis, months of
// replayed scheduling, fleet ramp — at one quiescent point. This tool restores
// that snapshot N times and lets each restore run a DIFFERENT future: the
// first branch replays the parent's own stream (the control), every other
// branch forks the failure RNG under a distinct label via
// World::branch_future, so the branches share an identical past and diverge
// only in the failures still to come. That is the counterfactual the paper's
// operators keep asking for ("same cluster, same backlog — how bad could the
// next week have been?") answered without re-simulating the past.
//
// Flags: --snapshot FILE [--branches N] [--prefix LABEL] [--baseline]
//   --baseline additionally times the uninterrupted run of the same scenario
//   and reports the fast-forward speedup (restore-and-run vs run-from-zero).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/acme.h"
#include "snap/format.h"

using namespace acme;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::uint64_t branches = 8;
  std::string prefix = "branch";
  std::uint64_t baseline = 0;

  common::FlagSet flags("acme_branch");
  flags.add("--snapshot", &snapshot_path, "world snapshot file to branch from");
  flags.add("--branches", &branches, "number of futures to run (default 8)");
  flags.add("--prefix", &prefix,
            "branch label prefix; branch i forks the failure stream under "
            "\"<prefix>-<i>\" (branch 0 replays the parent's own future)");
  flags.add("--baseline", &baseline,
            "1 = also time the uninterrupted run for the speedup recap");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "acme_branch: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "acme_branch: --snapshot is required\n%s",
                 flags.usage().c_str());
    return 2;
  }
  if (branches == 0) branches = 1;

  const world::ScenarioSpec spec = world::snapshot_spec(snapshot_path);
  std::printf("scenario (from snapshot): %s\n\n", spec.to_json().c_str());

  constexpr double kForever = std::numeric_limits<double>::infinity();
  common::Table table(
      {"branch", "failures", "goodput", "lost GPU-days", "digest"});
  std::vector<std::uint64_t> digests;
  double branch_wall = 0;
  for (std::uint64_t i = 0; i < branches; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    world::World w(spec);
    w.restore_file(snapshot_path);
    const std::string label = prefix + "-" + std::to_string(i);
    if (i > 0) w.branch_future(label);
    w.run_until(kForever);
    const world::WorldReport report = w.finish();
    branch_wall += seconds_since(t0);
    digests.push_back(report.digest());
    table.add_row(
        {i == 0 ? std::string("(parent future)") : label,
         std::to_string(report.failures_injected),
         common::Table::pct(report.goodput),
         common::Table::num((report.lost_work_gpu_seconds +
                             report.stall_gpu_seconds) /
                                common::kDay,
                            2),
         common::fnv1a_hex(report.digest())});
  }
  std::printf("%s", table.render().c_str());

  std::size_t distinct = 0;
  for (std::size_t i = 0; i < digests.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen = seen || digests[j] == digests[i];
    if (!seen) ++distinct;
  }
  std::printf("\n%zu branches, %zu distinct futures, %.2f s total (%.3f s "
              "per restore-and-run)\n",
              digests.size(), distinct, branch_wall,
              branch_wall / static_cast<double>(digests.size()));

  if (baseline != 0) {
    const auto t0 = std::chrono::steady_clock::now();
    const world::WorldReport straight = world::run_world(spec);
    const double straight_wall = seconds_since(t0);
    const double per_branch = branch_wall / static_cast<double>(digests.size());
    std::printf("uninterrupted run: %.3f s; fast-forward speedup %.2fx "
                "(parent-future digest %s: %s)\n",
                straight_wall,
                per_branch > 0 ? straight_wall / per_branch : 0.0,
                straight.digest() == digests[0] ? "matches" : "MISMATCH",
                common::fnv1a_hex(straight.digest()).c_str());
    if (straight.digest() != digests[0]) return 1;
  }
  return 0;
}
